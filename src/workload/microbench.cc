#include "workload/microbench.hh"

#include <sstream>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "isa/assembler.hh"
#include "workload/runtime.hh"

namespace fenceless::workload
{

using namespace isa;

namespace
{

/** Format "name: expected X got Y" diagnostics. */
std::string
mismatch(const std::string &what, std::uint64_t expected,
         std::uint64_t got)
{
    std::ostringstream os;
    os << what << ": expected " << expected << " got " << got;
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// SpinlockCrit
// ---------------------------------------------------------------------

isa::Program
SpinlockCrit::build(std::uint32_t)
{
    Assembler as;
    const Addr lock = as.paddedWord("lock", 0);
    const Addr counters = as.alloc("counters", params_.counters * 64, 64);
    counters_addr_ = counters;
    for (unsigned c = 0; c < params_.counters; ++c)
        as.init64(counters + c * 64, 0);

    as.li(a0, lock);
    as.li(a1, counters);
    as.li(s0, params_.iters);

    as.label("loop");
    emitSpinLockAcquire(as, a0, t0, t1);
    for (unsigned c = 0; c < params_.counters; ++c) {
        as.ld(t0, a1, static_cast<std::int64_t>(c) * 64);
        as.addi(t0, t0, 1);
        as.st(t0, a1, static_cast<std::int64_t>(c) * 64);
    }
    emitDelay(as, t2, params_.crit_work);
    emitSpinLockRelease(as, a0);
    emitDelay(as, t2, params_.non_crit_work);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();

    return as.finish();
}

bool
SpinlockCrit::check(const MemReader &read, std::uint32_t num_threads,
                    std::string &error) const
{
    const std::uint64_t expected =
        static_cast<std::uint64_t>(num_threads) * params_.iters;
    const Addr counters = counters_addr_;
    for (unsigned c = 0; c < params_.counters; ++c) {
        const std::uint64_t got = read(counters + c * 64, 8);
        if (got != expected) {
            error = mismatch(name() + " counter " + std::to_string(c),
                             expected, got);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// TicketLockCrit
// ---------------------------------------------------------------------

isa::Program
TicketLockCrit::build(std::uint32_t)
{
    Assembler as;
    const Addr next = as.paddedWord("next", 0);
    const Addr serving = as.paddedWord("serving", 0);
    const Addr counter = as.paddedWord("counter", 0);
    counter_addr_ = counter;

    as.li(a0, next);
    as.li(a1, serving);
    as.li(a2, counter);
    as.li(s0, params_.iters);

    as.label("loop");
    emitTicketLockAcquire(as, a0, a1, t0, t1);
    as.ld(t0, a2);
    as.addi(t0, t0, 1);
    as.st(t0, a2);
    emitDelay(as, t2, params_.crit_work);
    emitTicketLockRelease(as, a1, t0);
    emitDelay(as, t2, params_.non_crit_work);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();

    return as.finish();
}

bool
TicketLockCrit::check(const MemReader &read, std::uint32_t num_threads,
                      std::string &error) const
{
    const Addr counter = counter_addr_;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(num_threads) * params_.iters;
    const std::uint64_t got = read(counter, 8);
    if (got != expected) {
        error = mismatch(name() + " counter", expected, got);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// BarrierPhase
// ---------------------------------------------------------------------

isa::Program
BarrierPhase::build(std::uint32_t num_threads)
{
    Assembler as;
    const Addr count = as.paddedWord("bar_count", 0);
    const Addr sense = as.paddedWord("bar_sense", 0);
    const Addr slots = as.alloc("slots", num_threads * 64ULL, 64);
    const Addr violations = as.paddedWord("violations", 0);
    slots_addr_ = slots;
    violations_addr_ = violations;

    as.li(a0, count);
    as.li(a1, sense);
    as.li(a2, slots);
    as.li(a3, violations);
    as.csrr(s1, Csr::NumCores);
    // s2: local barrier sense (starts 0); s3: my slot; s4: neighbour slot
    as.slli(t0, tp, 6);
    as.add(s3, a2, t0);
    as.addi(t0, tp, 1);
    as.remu(t0, t0, s1);
    as.slli(t0, t0, 6);
    as.add(s4, a2, t0);
    as.li(s0, 0); // phase
    as.li(s5, params_.phases);

    as.label("loop");
    as.addi(t5, s0, 1);
    as.st(t5, s3);
    emitBarrier(as, a0, a1, s2, s1, t0, t1);
    as.ld(t0, s4);
    as.addi(t5, s0, 1);
    as.beq(t0, t5, "phase_ok");
    as.li(t1, 1);
    as.amoadd(t2, t1, a3);
    as.label("phase_ok");
    emitDelay(as, t0, params_.work);
    emitBarrier(as, a0, a1, s2, s1, t0, t1);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "loop");
    as.halt();

    return as.finish();
}

bool
BarrierPhase::check(const MemReader &read, std::uint32_t num_threads,
                    std::string &error) const
{
    const Addr slots = slots_addr_;
    const Addr violations = violations_addr_;
    if (std::uint64_t v = read(violations, 8)) {
        error = mismatch(name() + " violations", 0, v);
        return false;
    }
    for (std::uint32_t t = 0; t < num_threads; ++t) {
        const std::uint64_t got = read(slots + t * 64ULL, 8);
        if (got != params_.phases) {
            error = mismatch(name() + " slot " + std::to_string(t),
                             params_.phases, got);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Dekker
// ---------------------------------------------------------------------

isa::Program
Dekker::build(std::uint32_t)
{
    Assembler as;
    const Addr flags = as.alloc("flags", 2 * 64, 64);
    const Addr turn = as.paddedWord("turn", 0);
    const Addr counter = as.paddedWord("counter", 0);
    counter_addr_ = counter;

    // Threads beyond the first two just halt.
    as.li(t0, 2);
    as.bltu(tp, t0, "work");
    as.halt();

    as.label("work");
    // a0: my flag, a1: other flag, a2: turn, a3: counter, s7: other id
    as.li(t0, flags);
    as.slli(t1, tp, 6);
    as.add(a0, t0, t1);
    as.li(t2, 1);
    as.sub(t1, t2, tp); // other id
    as.mv(s7, t1);
    as.slli(t1, t1, 6);
    as.add(a1, t0, t1);
    as.li(a2, turn);
    as.li(a3, counter);
    as.li(s0, params_.iters);

    as.label("outer");
    as.li(t0, 1);
    as.st(t0, a0); // flag[i] = 1
    as.fence();    // full: order the flag store before reading flag[j]
    as.label("try");
    as.ld(t0, a1);
    as.beq(t0, x0, "cs");
    as.ld(t1, a2);
    as.beq(t1, tp, "try"); // my turn: keep waiting on flag[j]
    as.st(x0, a0);         // back off
    as.label("waitturn");
    as.ld(t1, a2);
    as.beq(t1, tp, "regain");
    as.pause();
    as.jump("waitturn");
    as.label("regain");
    as.li(t0, 1);
    as.st(t0, a0);
    as.fence();
    as.jump("try");

    as.label("cs");
    as.ld(t0, a3);
    as.addi(t0, t0, 1);
    as.st(t0, a3);
    emitDelay(as, t2, params_.crit_work);
    as.st(s7, a2); // turn = other
    as.fenceRelease();
    as.st(x0, a0); // flag[i] = 0
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "outer");
    as.halt();

    return as.finish();
}

bool
Dekker::check(const MemReader &read, std::uint32_t, std::string &error)
    const
{
    const Addr counter = counter_addr_;
    const std::uint64_t expected = 2 * params_.iters;
    const std::uint64_t got = read(counter, 8);
    if (got != expected) {
        error = mismatch(name() + " counter", expected, got);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// ProdCons
// ---------------------------------------------------------------------

isa::Program
ProdCons::build(std::uint32_t num_threads)
{
    flAssert(isPowerOf2(params_.capacity),
             "prodcons capacity must be a power of two");
    const std::uint32_t pairs = num_threads / 2;
    flAssert(pairs >= 1, "prodcons needs at least two threads");

    Assembler as;
    const std::uint64_t buf_bytes = params_.capacity * 8;
    const Addr bufs = as.alloc("bufs", pairs * buf_bytes, 64);
    const Addr heads = as.alloc("heads", pairs * 64ULL, 64);
    const Addr tails = as.alloc("tails", pairs * 64ULL, 64);
    const Addr sums = as.alloc("sums", pairs * 64ULL, 64);
    sums_addr_ = sums;

    // Unpaired odd thread (and any thread beyond the pairs) halts.
    as.li(t0, pairs * 2);
    as.bltu(tp, t0, "paired");
    as.halt();
    as.label("paired");

    // Pair-local addresses: a0 buf, a1 head, a2 tail, a3 sum slot.
    as.srli(s6, tp, 1); // pair index
    as.li(t0, buf_bytes);
    as.mul(t0, s6, t0);
    as.li(a0, bufs);
    as.add(a0, a0, t0);
    as.slli(t0, s6, 6);
    as.li(a1, heads);
    as.add(a1, a1, t0);
    as.li(a2, tails);
    as.add(a2, a2, t0);
    as.li(a3, sums);
    as.add(a3, a3, t0);
    as.li(s4, params_.capacity);

    as.andi(t0, tp, 1);
    as.bne(t0, x0, "consumer");

    // --- producer: send 1..items ---
    as.li(s0, 1);                 // next value
    as.li(s5, params_.items + 1); // stop value
    as.li(s1, 0);                 // local tail
    as.label("ploop");
    as.label("pwait");
    as.ld(t0, a1); // head
    as.sub(t2, s1, t0);
    as.bltu(t2, s4, "pok");
    as.pause();
    as.jump("pwait");
    as.label("pok");
    as.andi(t3, s1, static_cast<std::int64_t>(params_.capacity - 1));
    as.slli(t3, t3, 3);
    as.add(t3, a0, t3);
    as.st(s0, t3);
    as.fenceRelease(); // publish the slot before advancing the tail
    as.addi(s1, s1, 1);
    as.st(s1, a2);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "ploop");
    as.halt();

    // --- consumer: receive items, accumulate ---
    as.label("consumer");
    as.li(s1, 0); // local head
    as.li(s2, 0); // sum
    as.li(s5, params_.items);
    as.label("cloop");
    as.label("cwait");
    as.ld(t1, a2); // tail
    as.bltu(s1, t1, "cok");
    as.pause();
    as.jump("cwait");
    as.label("cok");
    as.fenceAcquire(); // consume the tail before reading the slot
    as.andi(t3, s1, static_cast<std::int64_t>(params_.capacity - 1));
    as.slli(t3, t3, 3);
    as.add(t3, a0, t3);
    as.ld(t0, t3);
    as.add(s2, s2, t0);
    as.addi(s1, s1, 1);
    as.st(s1, a1);
    as.bne(s1, s5, "cloop");
    as.st(s2, a3);
    as.halt();

    return as.finish();
}

bool
ProdCons::check(const MemReader &read, std::uint32_t num_threads,
                std::string &error) const
{
    const std::uint32_t pairs = num_threads / 2;
    const Addr sums = sums_addr_;
    const std::uint64_t expected =
        params_.items * (params_.items + 1) / 2;
    for (std::uint32_t p = 0; p < pairs; ++p) {
        const std::uint64_t got = read(sums + p * 64ULL, 8);
        if (got != expected) {
            error = mismatch(name() + " pair " + std::to_string(p)
                             + " sum", expected, got);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// MpmcQueue
// ---------------------------------------------------------------------

isa::Program
MpmcQueue::build(std::uint32_t num_threads)
{
    flAssert(num_threads >= 2, "mpmc-queue needs at least two threads");
    const std::uint32_t producers = num_threads / 2;
    const std::uint64_t total = producers * params_.items_per_producer;

    Assembler as;
    const Addr tail = as.paddedWord("tail", 0);
    const Addr head = as.paddedWord("head", 0);
    const Addr data = as.alloc("data", total * 8, 64);
    const Addr ready = as.alloc("ready", total * 8, 64);
    const Addr sums = as.alloc("sums", num_threads * 64ULL, 64);
    const Addr violations = as.paddedWord("violations", 0);
    sums_addr_ = sums;
    violations_addr_ = violations;

    as.li(a0, tail);
    as.li(a1, data);
    as.li(a2, ready);
    as.li(a3, head);
    as.li(a4, sums);
    as.li(a5, violations);
    as.li(s4, total);

    as.li(t0, producers);
    as.bgeu(tp, t0, "consumer");

    // --- producer ---
    as.li(s0, params_.items_per_producer);
    as.label("ploop");
    as.li(t1, 1);
    as.amoadd(t0, t1, a0); // idx = tail++
    as.slli(t2, t0, 3);
    as.add(t2, a1, t2);
    as.addi(t3, t0, 1); // value = idx + 1
    as.st(t3, t2);
    as.fenceRelease(); // publish the payload before the ready flag
    as.slli(t2, t0, 3);
    as.add(t2, a2, t2);
    as.li(t3, 1);
    as.st(t3, t2);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "ploop");
    as.halt();

    // --- consumer ---
    as.label("consumer");
    as.li(s2, 0); // sum
    as.label("cloop");
    as.li(t1, 1);
    as.amoadd(t0, t1, a3); // idx = head++
    as.bgeu(t0, s4, "cdone");
    as.slli(t2, t0, 3);
    as.add(t2, a2, t2);
    as.label("cspin");
    as.ld(t3, t2);
    as.bne(t3, x0, "cgot");
    as.pause();
    as.jump("cspin");
    as.label("cgot");
    as.fenceAcquire();
    as.slli(t2, t0, 3);
    as.add(t2, a1, t2);
    as.ld(t3, t2);
    as.addi(t5, t0, 1);
    as.beq(t3, t5, "val_ok");
    as.li(t6, 1);
    as.amoadd(t7, t6, a5);
    as.label("val_ok");
    as.add(s2, s2, t3);
    as.jump("cloop");
    as.label("cdone");
    as.slli(t0, tp, 6);
    as.add(t0, a4, t0);
    as.st(s2, t0);
    as.halt();

    return as.finish();
}

bool
MpmcQueue::check(const MemReader &read, std::uint32_t num_threads,
                 std::string &error) const
{
    const std::uint32_t producers = num_threads / 2;
    const std::uint64_t total =
        producers * params_.items_per_producer;
    const Addr sums = sums_addr_;
    const Addr violations = violations_addr_;

    if (std::uint64_t v = read(violations, 8)) {
        error = mismatch(name() + " violations", 0, v);
        return false;
    }
    std::uint64_t sum = 0;
    for (std::uint32_t t = producers; t < num_threads; ++t)
        sum += read(sums + t * 64ULL, 8);
    const std::uint64_t expected = total * (total + 1) / 2;
    if (sum != expected) {
        error = mismatch(name() + " total sum", expected, sum);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// SeqlockReaders
// ---------------------------------------------------------------------

isa::Program
SeqlockReaders::build(std::uint32_t)
{
    Assembler as;
    const Addr seq = as.paddedWord("seq", 0);
    const Addr pair = as.alloc("pair", 16, 64); // a at +0, b at +8
    const Addr violations = as.paddedWord("violations", 0);
    violations_addr_ = violations;

    as.li(a0, seq);
    as.li(a1, pair);
    as.li(a2, violations);

    as.bne(tp, x0, "reader");

    // --- writer (thread 0) ---
    as.li(s0, params_.writes);
    as.li(s1, 0); // k
    as.label("wl");
    as.addi(s1, s1, 1);
    as.slli(t0, s1, 1);  // 2k
    as.addi(t1, t0, -1); // 2k-1 (odd: write in progress)
    as.st(t1, a0);
    as.fenceRelease(); // seq-odd before the data writes
    as.st(s1, a1, 0);
    as.st(s1, a1, 8);
    as.fenceRelease(); // data before seq-even
    as.st(t0, a0);
    emitDelay(as, t2, 4);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "wl");
    as.halt();

    // --- readers ---
    as.label("reader");
    as.li(s0, params_.reads);
    as.label("rl");
    as.ld(t0, a0);
    as.andi(t1, t0, 1);
    as.bne(t1, x0, "next"); // writer active; count as an attempt
    as.fenceAcquire();
    as.ld(t2, a1, 0);
    as.ld(t3, a1, 8);
    as.ld(t4, a0);
    as.bne(t4, t0, "next"); // torn window; retry
    as.beq(t2, t3, "next");
    as.li(t5, 1);
    as.amoadd(t6, t5, a2); // inconsistent snapshot observed
    as.label("next");
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "rl");
    as.halt();

    return as.finish();
}

bool
SeqlockReaders::check(const MemReader &read, std::uint32_t,
                      std::string &error) const
{
    const Addr violations = violations_addr_;
    if (std::uint64_t v = read(violations, 8)) {
        error = mismatch(name() + " violations", 0, v);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// LocalLockStream
// ---------------------------------------------------------------------

isa::Program
LocalLockStream::build(std::uint32_t num_threads)
{
    Assembler as;
    const std::uint64_t region =
        params_.iters * params_.stream_stores * 64ULL;
    const Addr locks = as.alloc("locks", num_threads * 64ULL, 64);
    const Addr counters = as.alloc("counters", num_threads * 64ULL, 64);
    const Addr stream = as.alloc("stream", num_threads * region, 64);
    counters_addr_ = counters;
    stream_addr_ = stream;

    // Per-thread addresses.
    as.slli(t0, tp, 6);
    as.li(a0, locks);
    as.add(a0, a0, t0);
    as.li(a1, counters);
    as.add(a1, a1, t0);
    as.li(t0, region);
    as.mul(t0, tp, t0);
    as.li(a2, stream);
    as.add(a2, a2, t0);
    as.li(s0, params_.iters);

    as.label("loop");
    // Streaming stores to cold blocks: the value is the remaining
    // iteration count, so the checker can verify every block landed.
    for (unsigned k = 0; k < params_.stream_stores; ++k)
        as.st(s0, a2, static_cast<std::int64_t>(k) * 64);
    as.li(t0, params_.stream_stores * 64);
    as.add(a2, a2, t0);
    // Private critical section: uncontended, but the acquire atomic is
    // an ordering point that must drain the streaming stores.
    emitSpinLockAcquire(as, a0, t0, t1);
    as.ld(t0, a1);
    as.addi(t0, t0, 1);
    as.st(t0, a1);
    emitSpinLockRelease(as, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();

    return as.finish();
}

bool
LocalLockStream::check(const MemReader &read, std::uint32_t num_threads,
                       std::string &error) const
{
    const std::uint64_t region =
        params_.iters * params_.stream_stores * 64ULL;
    for (std::uint32_t t = 0; t < num_threads; ++t) {
        const std::uint64_t got = read(counters_addr_ + t * 64ULL, 8);
        if (got != params_.iters) {
            error = mismatch(name() + " counter " + std::to_string(t),
                             params_.iters, got);
            return false;
        }
        for (std::uint64_t i = 0; i < params_.iters; ++i) {
            for (unsigned k = 0; k < params_.stream_stores; ++k) {
                const Addr a = stream_addr_ + t * region
                               + (i * params_.stream_stores + k) * 64;
                const std::uint64_t v = read(a, 8);
                if (v != params_.iters - i) {
                    error = mismatch(
                        name() + " stream[" + std::to_string(t) + "]["
                        + std::to_string(i) + "]", params_.iters - i,
                        v);
                    return false;
                }
            }
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// SeededDeadlock
// ---------------------------------------------------------------------

isa::Program
SeededDeadlock::build(std::uint32_t)
{
    Assembler as;
    const Addr x = as.paddedWord("X", 0);
    const Addr y = as.paddedWord("Y", 0);
    const Addr barrier = as.paddedWord("barrier", 0);
    const Addr done = as.alloc("done", 2 * 64, 64);
    const Addr result = as.alloc("result", 2 * 64, 64);
    as.init64(done, 0);
    as.init64(done + 64, 0);
    as.init64(result, 0);
    as.init64(result + 64, 0);
    x_addr_ = x;
    y_addr_ = y;
    done_addr_ = done;
    result_addr_ = result;

    // Only threads 0 and 1 participate; the rest halt immediately.
    as.li(t0, 2);
    as.bltu(tp, t0, "work");
    as.halt();

    as.label("work");
    as.li(a0, x);
    as.li(a1, y);
    as.li(a2, barrier);

    // Phase 1: take the other thread's block into M state.  X and Y
    // are uncached here, so these GetM transactions fill from DRAM
    // and never enter the forward phase (the fault injection only
    // drops Fwd*Acks, so this phase always completes).
    as.beq(tp, x0, "own_y");
    as.li(t0, 0x1111);
    as.st(t0, a0); // thread 1 owns X
    as.jump("joined");
    as.label("own_y");
    as.li(t0, 0x2222);
    as.st(t0, a1); // thread 0 owns Y
    as.label("joined");
    as.fence(); // the ownership store is globally visible

    // Barrier: both stores are done before either cross-load starts.
    as.li(t0, 1);
    as.amoadd(t1, t0, a2);
    as.label("spin");
    as.ld(t1, a2);
    as.li(t2, 2);
    as.bltu(t1, t2, "spin");

    // Phase 2: load the block the *other* thread owns.  The directory
    // must forward each request to the owner; with the Fwd*Acks for X
    // and Y dropped, both transactions wedge and neither load returns.
    as.beq(tp, x0, "load_x");
    as.ld(s1, a1); // thread 1 reads Y
    as.jump("finish");
    as.label("load_x");
    as.ld(s1, a0); // thread 0 reads X
    as.label("finish");

    as.li(t0, result);
    as.slli(t1, tp, 6);
    as.add(t2, t0, t1);
    as.st(s1, t2); // result[tp] = cross-loaded value
    as.li(t0, done);
    as.add(t2, t0, t1);
    as.li(t1, 1);
    as.st(t1, t2); // done[tp] = 1
    as.halt();

    return as.finish();
}

bool
SeededDeadlock::check(const MemReader &read, std::uint32_t,
                      std::string &error) const
{
    for (unsigned t = 0; t < 2; ++t) {
        if (read(done_addr_ + t * 64, 8) != 1) {
            error = mismatch(name() + " done[" + std::to_string(t) +
                                 "]",
                             1, read(done_addr_ + t * 64, 8));
            return false;
        }
    }
    // Thread 0 cross-loads X (stored by thread 1), and vice versa.
    if (read(result_addr_, 8) != 0x1111) {
        error = mismatch(name() + " result[0]", 0x1111,
                         read(result_addr_, 8));
        return false;
    }
    if (read(result_addr_ + 64, 8) != 0x2222) {
        error = mismatch(name() + " result[1]", 0x2222,
                         read(result_addr_ + 64, 8));
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// AtomicHistogram
// ---------------------------------------------------------------------

isa::Program
AtomicHistogram::build(std::uint32_t num_threads)
{
    flAssert(isPowerOf2(params_.bins), "bins must be a power of two");
    Assembler as;
    const std::uint64_t per = params_.items_per_thread;
    const Addr inputs = as.alloc("inputs", num_threads * per * 8, 64);
    const Addr bins = as.alloc("bins", params_.bins * 8, 64);
    bins_addr_ = bins;

    Random rng(params_.seed);
    expected_.assign(params_.bins, 0);
    for (std::uint64_t i = 0; i < num_threads * per; ++i) {
        const std::uint64_t v = rng.next();
        as.init64(inputs + i * 8, v);
        ++expected_[v & (params_.bins - 1)];
    }

    as.li(a1, bins);
    as.li(t0, per * 8);
    as.mul(t0, tp, t0);
    as.li(a0, inputs);
    as.add(a0, a0, t0);
    as.li(s0, per);

    as.label("hl");
    as.ld(t0, a0);
    as.andi(t1, t0, static_cast<std::int64_t>(params_.bins - 1));
    as.slli(t1, t1, 3);
    as.add(t1, a1, t1);
    as.li(t2, 1);
    as.amoadd(t3, t2, t1);
    as.addi(a0, a0, 8);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "hl");
    as.halt();

    return as.finish();
}

bool
AtomicHistogram::check(const MemReader &read, std::uint32_t,
                       std::string &error) const
{
    const Addr bins = bins_addr_;
    flAssert(expected_.size() == params_.bins,
             "check before build for atomic-histogram");
    for (unsigned b = 0; b < params_.bins; ++b) {
        const std::uint64_t got = read(bins + b * 8, 8);
        if (got != expected_[b]) {
            error = mismatch(name() + " bin " + std::to_string(b),
                             expected_[b], got);
            return false;
        }
    }
    return true;
}

} // namespace fenceless::workload
