#include "workload/kernels.hh"

#include <sstream>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "isa/assembler.hh"
#include "workload/runtime.hh"

namespace fenceless::workload
{

using namespace isa;

namespace
{

std::string
mismatch(const std::string &what, std::uint64_t expected,
         std::uint64_t got)
{
    std::ostringstream os;
    os << what << ": expected " << expected << " got " << got;
    return os.str();
}

/** The guest's xorshift64 step, replicated on the host. */
std::uint64_t
xorshift64(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

constexpr std::uint64_t irregular_prime = 2654435761ULL;

} // namespace

// ---------------------------------------------------------------------
// Stencil2D
// ---------------------------------------------------------------------

isa::Program
Stencil2D::build(std::uint32_t)
{
    const std::uint64_t dim = params_.n + 2;
    const std::uint64_t row_bytes = dim * 8;
    const std::uint64_t grid_bytes = dim * dim * 8;

    Assembler as;
    const Addr grid_a = as.alloc("grid_a", grid_bytes, 64);
    const Addr grid_b = as.alloc("grid_b", grid_bytes, 64);
    const Addr bar_count = as.paddedWord("bar_count", 0);
    const Addr bar_sense = as.paddedWord("bar_sense", 0);
    grid_a_ = grid_a;
    grid_b_ = grid_b;

    // Deterministic initial values everywhere (boundary included); only
    // the interior is ever rewritten.
    Random rng(params_.seed);
    for (std::uint64_t i = 0; i < dim; ++i) {
        for (std::uint64_t j = 0; j < dim; ++j) {
            const std::uint64_t v = rng.range(0, 1'000'000);
            as.init64(grid_a + (i * dim + j) * 8, v);
            as.init64(grid_b + (i * dim + j) * 8, v);
        }
    }

    const auto rb = static_cast<std::int64_t>(row_bytes);

    as.li(a0, grid_a);
    as.li(a1, grid_b);
    as.li(a2, bar_count);
    as.li(a3, bar_sense);
    as.csrr(s1, Csr::NumCores);
    as.li(s4, params_.n);
    as.li(s5, row_bytes);
    as.li(s0, 0); // iteration

    as.label("iter_loop");
    // Select src/dst by iteration parity.
    as.andi(t0, s0, 1);
    as.bne(t0, x0, "odd");
    as.mv(s6, a0);
    as.mv(s7, a1);
    as.jump("rows");
    as.label("odd");
    as.mv(s6, a1);
    as.mv(s7, a0);

    as.label("rows");
    as.addi(s3, tp, 1); // my first row
    as.label("row_loop");
    as.bltu(s4, s3, "rows_done"); // row > n?
    // Row base pointers.
    as.mul(t1, s3, s5);
    as.add(t2, s6, t1); // src row
    as.add(t3, s7, t1); // dst row
    as.li(s8, 1);       // col
    as.label("col_loop");
    as.slli(t4, s8, 3);
    as.add(t5, t2, t4); // &src[row][col]
    as.ld(t0, t5, -rb);
    as.ld(t1, t5, rb);
    as.add(t0, t0, t1);
    as.ld(t1, t5, -8);
    as.add(t0, t0, t1);
    as.ld(t1, t5, 8);
    as.add(t0, t0, t1);
    as.srli(t0, t0, 2);
    as.add(t5, t3, t4);
    as.st(t0, t5);
    as.addi(s8, s8, 1);
    as.bgeu(s4, s8, "col_loop"); // col <= n
    as.add(s3, s3, s1);          // next cyclic row
    as.jump("row_loop");
    as.label("rows_done");
    emitBarrier(as, a2, a3, s2, s1, t0, t1);
    as.addi(s0, s0, 1);
    as.li(t0, params_.iters);
    as.bne(s0, t0, "iter_loop");
    as.halt();

    return as.finish();
}

bool
Stencil2D::check(const MemReader &read, std::uint32_t,
                 std::string &error) const
{
    const std::uint64_t dim = params_.n + 2;
    // Host model: identical sweeps.
    std::vector<std::uint64_t> a(dim * dim), b(dim * dim);
    Random rng(params_.seed);
    for (std::uint64_t i = 0; i < dim * dim; ++i)
        a[i] = b[i] = rng.range(0, 1'000'000);
    for (std::uint64_t it = 0; it < params_.iters; ++it) {
        const auto &src = (it % 2 == 0) ? a : b;
        auto &dst = (it % 2 == 0) ? b : a;
        for (std::uint64_t i = 1; i <= params_.n; ++i) {
            for (std::uint64_t j = 1; j <= params_.n; ++j) {
                dst[i * dim + j] =
                    (src[(i - 1) * dim + j] + src[(i + 1) * dim + j] +
                     src[i * dim + j - 1] + src[i * dim + j + 1]) >> 2;
            }
        }
    }
    const auto &final_host = (params_.iters % 2 == 0) ? a : b;
    const Addr final_guest =
        (params_.iters % 2 == 0) ? grid_a_ : grid_b_;
    for (std::uint64_t i = 1; i <= params_.n; ++i) {
        for (std::uint64_t j = 1; j <= params_.n; ++j) {
            const std::uint64_t got =
                read(final_guest + (i * dim + j) * 8, 8);
            if (got != final_host[i * dim + j]) {
                error = mismatch(name() + " cell (" + std::to_string(i)
                                 + "," + std::to_string(j) + ")",
                                 final_host[i * dim + j], got);
                return false;
            }
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// IrregularUpdate
// ---------------------------------------------------------------------

isa::Program
IrregularUpdate::build(std::uint32_t)
{
    flAssert(isPowerOf2(params_.bins), "bins must be a power of two");
    Assembler as;
    const Addr locks = as.alloc("locks", params_.bins * 64ULL, 64);
    const Addr vals = as.alloc("vals", params_.bins * 64ULL, 64);
    vals_addr_ = vals;

    as.li(a0, locks);
    as.li(a1, vals);
    // Per-thread PRNG state: (tid + 1) * prime ^ seed.
    as.li(t0, irregular_prime);
    as.addi(t1, tp, 1);
    as.mul(s6, t1, t0);
    as.li(t0, params_.seed);
    as.xor_(s6, s6, t0);
    as.li(s0, params_.updates);

    as.label("uloop");
    emitXorshift(as, s6, t0);
    as.srli(t1, s6, static_cast<std::int64_t>(params_.bin_shift));
    as.andi(t1, t1, static_cast<std::int64_t>(params_.bins - 1));
    as.slli(t1, t1, 6);
    as.add(a2, a0, t1); // lock address
    as.add(a3, a1, t1); // value address
    emitSpinLockAcquire(as, a2, t0, t2);
    as.ld(t4, a3);
    as.andi(t5, s6, 0xff); // delta
    as.add(t4, t4, t5);
    as.st(t4, a3);
    emitSpinLockRelease(as, a2);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "uloop");
    as.halt();

    return as.finish();
}

bool
IrregularUpdate::check(const MemReader &read, std::uint32_t num_threads,
                       std::string &error) const
{
    std::vector<std::uint64_t> expected(params_.bins, 0);
    for (std::uint32_t t = 0; t < num_threads; ++t) {
        std::uint64_t state =
            ((t + 1) * irregular_prime) ^ params_.seed;
        flAssert(state != 0, "degenerate xorshift seed");
        for (std::uint64_t u = 0; u < params_.updates; ++u) {
            state = xorshift64(state);
            const unsigned bin =
                (state >> params_.bin_shift) & (params_.bins - 1);
            expected[bin] += state & 0xff;
        }
    }
    for (unsigned b = 0; b < params_.bins; ++b) {
        const std::uint64_t got = read(vals_addr_ + b * 64ULL, 8);
        if (got != expected[b]) {
            error = mismatch(name() + " bin " + std::to_string(b),
                             expected[b], got);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// RadixPartition
// ---------------------------------------------------------------------

isa::Program
RadixPartition::build(std::uint32_t num_threads)
{
    flAssert(isPowerOf2(params_.buckets),
             "buckets must be a power of two");
    const std::uint64_t per = params_.items_per_thread;
    const std::uint64_t total = per * num_threads;

    Assembler as;
    const Addr input = as.alloc("input", total * 8, 64);
    const Addr counts = as.alloc("counts", params_.buckets * 8, 64);
    const Addr offsets = as.alloc("offsets", params_.buckets * 8, 64);
    const Addr out = as.alloc("out", total * 8, 64);
    const Addr bar_count = as.paddedWord("bar_count", 0);
    const Addr bar_sense = as.paddedWord("bar_sense", 0);
    out_addr_ = out;
    counts_addr_ = counts;

    Random rng(params_.seed);
    inputs_.assign(total, 0);
    for (std::uint64_t i = 0; i < total; ++i) {
        inputs_[i] = rng.next();
        as.init64(input + i * 8, inputs_[i]);
    }

    const auto bucket_mask =
        static_cast<std::int64_t>(params_.buckets - 1);

    as.li(a2, bar_count);
    as.li(a3, bar_sense);
    as.csrr(s1, Csr::NumCores);
    // My slice of the input.
    as.li(t0, per * 8);
    as.mul(t0, tp, t0);
    as.li(a0, input);
    as.add(a0, a0, t0);
    as.li(a1, counts);
    as.li(a4, offsets);
    as.li(a5, out);

    // --- phase 1: count ---
    as.li(s0, per);
    as.mv(s3, a0);
    as.label("count_loop");
    as.ld(t0, s3);
    as.andi(t1, t0, bucket_mask);
    as.slli(t1, t1, 3);
    as.add(t1, a1, t1);
    as.li(t2, 1);
    as.amoadd(t3, t2, t1);
    as.addi(s3, s3, 8);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "count_loop");

    emitBarrier(as, a2, a3, s2, s1, t0, t1);

    // --- phase 2: exclusive prefix scan (thread 0 only) ---
    as.bne(tp, x0, "scan_done");
    as.li(s0, 0);  // bucket index
    as.li(s3, 0);  // running total
    as.li(s5, params_.buckets);
    as.label("scan_loop");
    as.slli(t0, s0, 3);
    as.add(t1, a1, t0);
    as.ld(t2, t1); // count
    as.add(t1, a4, t0);
    as.st(s3, t1); // offsets[b] = acc
    as.add(s3, s3, t2);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "scan_loop");
    as.label("scan_done");

    emitBarrier(as, a2, a3, s2, s1, t0, t1);

    // --- phase 3: scatter ---
    as.li(s0, per);
    as.mv(s3, a0);
    as.label("scatter_loop");
    as.ld(t0, s3);
    as.andi(t1, t0, bucket_mask);
    as.slli(t1, t1, 3);
    as.add(t1, a4, t1);
    as.li(t2, 1);
    as.amoadd(t3, t2, t1); // position = offsets[b]++
    as.slli(t3, t3, 3);
    as.add(t3, a5, t3);
    as.st(t0, t3);
    as.addi(s3, s3, 8);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "scatter_loop");
    as.halt();

    return as.finish();
}

bool
RadixPartition::check(const MemReader &read, std::uint32_t num_threads,
                      std::string &error) const
{
    const std::uint64_t total =
        params_.items_per_thread * num_threads;
    flAssert(inputs_.size() == total,
             "check before build for radix-partition");

    // Host model: bucket boundaries and input checksum.
    std::vector<std::uint64_t> counts(params_.buckets, 0);
    std::uint64_t input_sum = 0;
    for (std::uint64_t v : inputs_) {
        ++counts[v & (params_.buckets - 1)];
        input_sum += v;
    }
    std::vector<std::uint64_t> starts(params_.buckets, 0);
    for (unsigned b = 1; b < params_.buckets; ++b)
        starts[b] = starts[b - 1] + counts[b - 1];

    for (unsigned b = 0; b < params_.buckets; ++b) {
        const std::uint64_t got = read(counts_addr_ + b * 8, 8);
        if (got != counts[b]) {
            error = mismatch(name() + " count " + std::to_string(b),
                             counts[b], got);
            return false;
        }
    }

    std::uint64_t out_sum = 0;
    for (unsigned b = 0; b < params_.buckets; ++b) {
        for (std::uint64_t i = starts[b]; i < starts[b] + counts[b];
             ++i) {
            const std::uint64_t v = read(out_addr_ + i * 8, 8);
            out_sum += v;
            if ((v & (params_.buckets - 1)) != b) {
                error = name() + " element at " + std::to_string(i)
                        + " not in bucket " + std::to_string(b);
                return false;
            }
        }
    }
    if (out_sum != input_sum) {
        error = mismatch(name() + " checksum", input_sum, out_sum);
        return false;
    }
    return true;
}


// ---------------------------------------------------------------------
// MatmulBlocked
// ---------------------------------------------------------------------

isa::Program
MatmulBlocked::build(std::uint32_t)
{
    const std::uint64_t n = params_.n;
    Assembler as;
    const Addr a_mat = as.alloc("a_mat", n * n * 8, 64);
    const Addr b_mat = as.alloc("b_mat", n * n * 8, 64);
    const Addr c_mat = as.alloc("c_mat", n * n * 8, 64);
    const Addr bar_count = as.paddedWord("bar_count", 0);
    const Addr bar_sense = as.paddedWord("bar_sense", 0);
    c_addr_ = c_mat;

    Random rng(params_.seed);
    a_.assign(n * n, 0);
    b_.assign(n * n, 0);
    for (std::uint64_t i = 0; i < n * n; ++i) {
        a_[i] = rng.range(0, 1'000);
        b_[i] = rng.range(0, 1'000);
        as.init64(a_mat + i * 8, a_[i]);
        as.init64(b_mat + i * 8, b_[i]);
    }

    const auto row_bytes = static_cast<std::int64_t>(n * 8);

    as.li(a0, a_mat);
    as.li(a1, b_mat);
    as.li(a2, c_mat);
    as.li(a3, bar_count);
    as.li(a4, bar_sense);
    as.csrr(s1, Csr::NumCores);
    as.li(s4, n);
    as.li(s5, row_bytes);

    // i-k-j loop nest over my (cyclic) rows.
    as.mv(s3, tp); // i
    as.label("i_loop");
    as.bgeu(s3, s4, "i_done");
    as.mul(t0, s3, s5);
    as.add(s6, a0, t0); // &A[i][0]
    as.add(s7, a2, t0); // &C[i][0]
    as.li(s8, 0);       // k
    as.label("k_loop");
    as.slli(t0, s8, 3);
    as.add(t0, s6, t0);
    as.ld(s9, t0);      // t = A[i][k]
    as.mul(t0, s8, s5);
    as.add(s10, a1, t0); // &B[k][0]
    as.li(s11, 0);       // j
    as.label("j_loop");
    as.slli(t0, s11, 3);
    as.add(t1, s10, t0); // &B[k][j]
    as.ld(t2, t1);
    as.mul(t2, s9, t2);
    as.add(t1, s7, t0);  // &C[i][j]
    as.ld(t3, t1);
    as.add(t3, t3, t2);
    as.st(t3, t1);
    as.addi(s11, s11, 1);
    as.bne(s11, s4, "j_loop");
    as.addi(s8, s8, 1);
    as.bne(s8, s4, "k_loop");
    as.add(s3, s3, s1); // next cyclic row
    as.jump("i_loop");
    as.label("i_done");
    emitBarrier(as, a3, a4, s2, s1, t0, t1);
    as.halt();

    return as.finish();
}

bool
MatmulBlocked::check(const MemReader &read, std::uint32_t,
                     std::string &error) const
{
    const std::uint64_t n = params_.n;
    flAssert(a_.size() == n * n, "check before build for matmul");
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            std::uint64_t expected = 0;
            for (std::uint64_t k = 0; k < n; ++k)
                expected += a_[i * n + k] * b_[k * n + j];
            const std::uint64_t got = read(c_addr_ + (i * n + j) * 8,
                                           8);
            if (got != expected) {
                error = mismatch(name() + " C(" + std::to_string(i)
                                 + "," + std::to_string(j) + ")",
                                 expected, got);
                return false;
            }
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

isa::Program
Pipeline::build(std::uint32_t num_threads)
{
    flAssert(num_threads >= 2, "pipeline needs at least two stages");
    const std::uint64_t items = params_.items;
    const std::uint32_t stages = num_threads;

    Assembler as;
    // One SPSC channel between consecutive stages: channel t carries
    // stage t -> t+1.  No wraparound: slot per item.
    const std::uint64_t chan_bytes = items * 8;
    const Addr data = as.alloc("data", (stages - 1) * chan_bytes, 64);
    const Addr ready = as.alloc("ready", (stages - 1) * chan_bytes, 64);
    const Addr sum = as.paddedWord("sum", 0);
    sum_addr_ = sum;

    // Channel base helpers: in = channel tid-1, out = channel tid.
    as.li(t0, chan_bytes);
    as.mul(t1, tp, t0); // tid * chan_bytes
    as.li(a0, data);
    as.add(a0, a0, t1); // my OUT data base (stage tid)
    as.li(a1, ready);
    as.add(a1, a1, t1); // my OUT ready base
    as.sub(t1, t1, t0); // (tid-1) * chan_bytes
    as.li(a2, data);
    as.add(a2, a2, t1); // my IN data base
    as.li(a3, ready);
    as.add(a3, a3, t1); // my IN ready base
    as.li(s5, items);

    as.beq(tp, x0, "producer");
    as.csrr(t0, Csr::NumCores);
    as.addi(t0, t0, -1);
    as.beq(tp, t0, "sink");

    // --- intermediate stage: read, +1, forward ---
    as.li(s0, 0); // index
    as.label("mid_loop");
    as.slli(t2, s0, 3);
    as.add(t3, a3, t2);
    as.label("mid_wait");
    as.ld(t4, t3);
    as.bne(t4, x0, "mid_got");
    as.pause();
    as.jump("mid_wait");
    as.label("mid_got");
    as.fenceAcquire();
    as.add(t4, a2, t2);
    as.ld(t5, t4);
    as.addi(t5, t5, 1); // the stage transform
    as.add(t4, a0, t2);
    as.st(t5, t4);
    as.fenceRelease();
    as.add(t4, a1, t2);
    as.li(t5, 1);
    as.st(t5, t4);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "mid_loop");
    as.halt();

    // --- producer: emit 1..items ---
    as.label("producer");
    as.li(s0, 0);
    as.label("p_loop");
    as.slli(t2, s0, 3);
    as.add(t4, a0, t2);
    as.addi(t5, s0, 1); // value = index + 1
    as.st(t5, t4);
    as.fenceRelease();
    as.add(t4, a1, t2);
    as.li(t5, 1);
    as.st(t5, t4);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "p_loop");
    as.halt();

    // --- sink: accumulate ---
    as.label("sink");
    as.li(s0, 0);
    as.li(s2, 0);
    as.label("s_loop");
    as.slli(t2, s0, 3);
    as.add(t3, a3, t2);
    as.label("s_wait");
    as.ld(t4, t3);
    as.bne(t4, x0, "s_got");
    as.pause();
    as.jump("s_wait");
    as.label("s_got");
    as.fenceAcquire();
    as.add(t4, a2, t2);
    as.ld(t5, t4);
    as.add(s2, s2, t5);
    as.addi(s0, s0, 1);
    as.bne(s0, s5, "s_loop");
    as.li(t0, sum);
    as.st(s2, t0);
    as.halt();

    return as.finish();
}

bool
Pipeline::check(const MemReader &read, std::uint32_t num_threads,
                std::string &error) const
{
    const std::uint64_t items = params_.items;
    // Each of the (stages - 2) intermediate stages adds one.
    const std::uint64_t transforms = num_threads - 2;
    const std::uint64_t expected =
        items * (items + 1) / 2 + items * transforms;
    const std::uint64_t got = read(sum_addr_, 8);
    if (got != expected) {
        error = mismatch(name() + " sum", expected, got);
        return false;
    }
    return true;
}

} // namespace fenceless::workload
