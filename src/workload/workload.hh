/**
 * @file
 * The workload interface: a multithreaded guest program plus a
 * postcondition checker.
 *
 * Every workload builds one program image executed by all hardware
 * threads (behaviour dispatched on the Tid CSR) and can verify the final
 * memory image produced by a run -- either against a host-side model of
 * the same computation or against program-level invariants (e.g. "the
 * guest-side violation counter is zero", which turns consistency bugs
 * into test failures).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/program.hh"

namespace fenceless::workload
{

/** Functional reader over the final (coherent) memory image. */
using MemReader = std::function<std::uint64_t(Addr, unsigned)>;

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier used in benchmark tables. */
    virtual std::string name() const = 0;

    /** Build the program for @p num_threads hardware threads. */
    virtual isa::Program build(std::uint32_t num_threads) = 0;

    /**
     * Check the final memory image of a run.
     * @param read         functional memory reader
     * @param num_threads  thread count the program was built for
     * @param error        filled with a diagnostic on failure
     * @return true if every postcondition holds
     */
    virtual bool check(const MemReader &read, std::uint32_t num_threads,
                       std::string &error) const = 0;

    /** Minimum thread count the workload supports. */
    virtual std::uint32_t minThreads() const { return 1; }
};

using WorkloadPtr = std::unique_ptr<Workload>;

/**
 * The standard benchmark suite (one instance of every workload), scaled
 * by @p scale (1 = the size used by the unit tests; benches use larger).
 */
std::vector<WorkloadPtr> standardSuite(unsigned scale = 1);

/** The synchronization microbenchmarks only. */
std::vector<WorkloadPtr> microSuite(unsigned scale = 1);

/** The SPLASH-class kernels only. */
std::vector<WorkloadPtr> kernelSuite(unsigned scale = 1);

} // namespace fenceless::workload
