#include "analysis/json.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace fenceless::analysis
{

namespace
{

const Json null_json;

} // namespace

const Json &
Json::operator[](const std::string &key) const
{
    if (kind_ != Kind::Object)
        return null_json;
    auto it = obj_.find(key);
    return it == obj_.end() ? null_json : it->second;
}

class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    run(Json &out, std::string &error)
    {
        if (!value(out) || !(skipWs(), atEnd())) {
            error = describe();
            out = Json{};
            return false;
        }
        return true;
    }

  private:
    bool atEnd() const { return pos_ >= text_.size(); }

    char peek() const { return atEnd() ? '\0' : text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    fail(const char *what)
    {
        if (what_ == nullptr) { // keep the innermost, earliest cause
            what_ = what;
            fail_pos_ = pos_;
        }
        return false;
    }

    std::string
    describe() const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < fail_pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << "line " << line << ", column " << col << ": "
           << (what_ ? what_ : "trailing characters after the document");
        return os.str();
    }

    bool
    literal(const char *word, Json &out, Json::Kind kind, bool b)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (peek() != *p)
                return fail("invalid literal");
        }
        out.kind_ = kind;
        out.bool_ = b;
        return true;
    }

    bool
    number(Json &out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start)
            return fail("expected a number");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out.kind_ = Json::Kind::Number;
        out.num_ = v;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++pos_;
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                // Our writers only emit \u00xx control escapes; decode
                // the BMP code point as Latin-1/ASCII when it fits one
                // byte and pass the raw escape through otherwise.
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                if (code < 0x100) {
                    out += static_cast<char>(code);
                } else {
                    std::ostringstream raw;
                    raw << "\\u" << std::hex << code;
                    out += raw.str();
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    value(Json &out)
    {
        skipWs();
        switch (peek()) {
          case '{': return objectValue(out);
          case '[': return arrayValue(out);
          case '"':
            out.kind_ = Json::Kind::String;
            return string(out.str_);
          case 't': return literal("true", out, Json::Kind::Bool, true);
          case 'f':
            return literal("false", out, Json::Kind::Bool, false);
          case 'n': return literal("null", out, Json::Kind::Null, false);
          default: return number(out);
        }
    }

    bool
    objectValue(Json &out)
    {
        ++pos_; // consume '{'
        out.kind_ = Json::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            Json member;
            if (!value(member))
                return false;
            out.obj_[key] = std::move(member);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    arrayValue(Json &out)
    {
        ++pos_; // consume '['
        out.kind_ = Json::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json element;
            if (!value(element))
                return false;
            out.arr_.push_back(std::move(element));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    const char *what_ = nullptr;
    std::size_t fail_pos_ = 0;
};

bool
Json::parse(const std::string &text, Json &out, std::string &error)
{
    Parser p(text);
    return p.run(out, error);
}

} // namespace fenceless::analysis
