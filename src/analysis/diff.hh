/**
 * @file
 * Cross-run comparison: differential waste attribution between two
 * profiles, stat-level deltas between two stats runs, per-run summary
 * metrics, and scaling analysis over a swept axis.
 *
 * Waste deltas are computed on the profiler's raw integer cycle
 * counters, never on derived floats, so the whole-run per-bucket
 * totals in a report match each run's own `--waste-report` output to
 * the exact count -- the property CI's report-smoke job asserts.
 *
 * Every ranking here is deterministic: value ordering with the symbol
 * string as tiebreak, operating on sorted maps, so two invocations
 * over identical inputs produce byte-identical reports.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/loader.hh"

namespace fenceless::analysis
{

/** Whole-run cycles one waste bucket charged in each run. */
struct BucketDelta
{
    std::string bucket;
    std::uint64_t base = 0;
    std::uint64_t cand = 0;

    std::int64_t
    delta() const
    {
        return static_cast<std::int64_t>(cand) -
               static_cast<std::int64_t>(base);
    }
};

/** One symbol's cycle movement between two profiles. */
struct PcDelta
{
    std::string sym;
    std::uint64_t base_wasted = 0;
    std::uint64_t cand_wasted = 0;
    std::uint64_t base_total = 0;
    std::uint64_t cand_total = 0;
    bool only_base = false; //!< symbol vanished in the candidate
    bool only_cand = false; //!< symbol is new in the candidate

    std::int64_t
    delta() const
    {
        return static_cast<std::int64_t>(cand_wasted) -
               static_cast<std::int64_t>(base_wasted);
    }
};

/** One "sym;bucket base cand" row of the folded flamegraph diff. */
struct FoldedDiffRow
{
    std::string stack;
    std::uint64_t base = 0;
    std::uint64_t cand = 0;
};

struct ProfileDiff
{
    std::vector<BucketDelta> buckets;  //!< taxonomy order
    std::vector<PcDelta> regressed;    //!< delta > 0, worst first
    std::vector<PcDelta> improved;     //!< delta < 0, best first
    std::vector<FoldedDiffRow> folded; //!< every stack, sorted
};

ProfileDiff diffProfiles(const ProfileRun &base, const ProfileRun &cand,
                         std::size_t top_n);

/** One numeric facet of one stat, in both runs. */
struct StatDelta
{
    std::string group;
    std::string stat;  //!< full name as emitted ("core_0.ipc")
    std::string field; //!< "value", "p99", ...
    std::string unit;  //!< from the schema block, "" if unknown
    double base = 0.0;
    double cand = 0.0;

    double delta() const { return cand - base; }

    /** Relative change; an appearance from zero reads as +/-inf-ish,
     *  capped so rankings stay finite. */
    double rel() const;
};

/** Stat groups present in exactly one of the two runs. */
struct GroupPresence
{
    std::vector<std::string> added;   //!< only in the candidate
    std::vector<std::string> removed; //!< only in the baseline
};

struct StatsDiff
{
    GroupPresence presence;
    /** Largest relative movements among common scalar/formula stats. */
    std::vector<StatDelta> top;
    /** mean/p50/p95/p99/p999 deltas of common distribution stats that
     *  moved, ranked by |relative change|.  An absent percentile key
     *  (e.g. "p999" in a schema-v1 base) reads as 0, so its
     *  appearance in the candidate surfaces as a delta. */
    std::vector<StatDelta> percentiles;
};

StatsDiff diffStats(const StatsRun &base, const StatsRun &cand,
                    std::size_t top_n);

/** Headline metrics of one run, the row unit of scaling analysis. */
struct RunSummary
{
    std::string label;
    std::string topology;
    std::uint32_t cores = 0;
    std::uint32_t shards = 1;
    std::uint32_t dir_banks = 1;

    double cycles = 0.0; //!< max core halt_tick
    double insts = 0.0;  //!< summed committed instructions
    double throughput = 0.0; //!< insts / cycles
    double rollbacks = 0.0;

    double msgs = 0.0;
    double hops = 0.0;
    double links_used = 0.0;
    double hot_link_msgs = 0.0;
    double hot_link_busy = 0.0;

    /** max per-core insts over mean: 1.0 is perfectly balanced. */
    double core_imbalance = 0.0;
    /** Same over deterministic per-shard event counts; 0 = no host
     *  telemetry in the document. */
    double shard_imbalance = 0.0;

    /** Waste-bucket cycle totals (empty without a profile). */
    std::map<std::string, std::uint64_t> waste;
    /** Deterministic coordinator boundary causes (empty w/o host). */
    std::map<std::string, std::uint64_t> boundary_causes;
};

RunSummary summarize(const RunInput &run);

struct ScalingRow
{
    RunSummary summary;
    std::string axis_label; //!< "16", "mesh", ...
    double axis_value = 0.0; //!< 0 for categorical axes
    double speedup = 1.0;    //!< throughput over the first row's
    double efficiency = 1.0; //!< speedup / axis growth (numeric axes)
};

struct ScalingTable
{
    std::string axis; //!< cores | shards | dir_banks | topology
    std::vector<ScalingRow> rows; //!< input order (the sweep order)
};

/**
 * Scaling analysis of @p runs along @p axis.  Rows keep input order;
 * speedup/efficiency are relative to the first run, which callers
 * should therefore pass as the sweep's starting point.
 */
ScalingTable buildScaling(const std::vector<RunInput> &runs,
                          const std::string &axis);

} // namespace fenceless::analysis
