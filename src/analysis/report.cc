#include "analysis/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace fenceless::analysis
{

// ---------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------

std::string
fmtCount(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
fmtDelta(std::int64_t v)
{
    if (v > 0)
        return "+" + std::to_string(v);
    return std::to_string(v);
}

std::string
fmtF3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

std::string
fmtPct(double base, double cand)
{
    if (base == 0.0)
        return cand == 0.0 ? "0.0%" : "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  (cand - base) / std::fabs(base) * 100.0);
    return buf;
}

namespace
{

/** A float that is usually an integer count: drop the ".000". */
std::string
fmtNum(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    return fmtF3(v);
}

// ---------------------------------------------------------------------
// Document model: sections are built once and rendered by both the
// markdown and the HTML writer, so the two formats cannot drift.
// ---------------------------------------------------------------------

struct Cell
{
    std::string text;
    double shade = -1.0; //!< 0..1 heatmap intensity; <0 = plain
};

struct Table
{
    std::vector<std::string> headers;
    std::vector<char> align; //!< 'l' or 'r' per column
    std::vector<std::vector<Cell>> rows;
};

struct Block
{
    enum class Kind
    {
        Heading,
        Para,
        Bullets,
        TableK,
        Flame,
    };

    Kind kind = Kind::Para;
    int level = 2;    //!< heading level
    std::string text; //!< heading / paragraph text
    std::vector<std::string> items;
    Table table;
    std::vector<FoldedDiffRow> flame;
    std::uint64_t flame_max = 0;
};

struct Doc
{
    std::string title;
    std::vector<Block> blocks;
};

Block
heading(int level, std::string text)
{
    Block b;
    b.kind = Block::Kind::Heading;
    b.level = level;
    b.text = std::move(text);
    return b;
}

Block
para(std::string text)
{
    Block b;
    b.kind = Block::Kind::Para;
    b.text = std::move(text);
    return b;
}

std::vector<Cell>
cells(std::vector<std::string> texts)
{
    std::vector<Cell> row;
    row.reserve(texts.size());
    for (auto &t : texts)
        row.push_back(Cell{std::move(t), -1.0});
    return row;
}

// --- section builders -------------------------------------------------

void
buildRunsSection(const ReportModel &model, Doc &doc)
{
    doc.blocks.push_back(heading(2, "Runs"));
    Block b;
    b.kind = Block::Kind::TableK;
    b.table.headers = {"run",    "topology",  "cores",
                       "shards", "dir banks", "cycles",
                       "insts",  "throughput", "rollbacks"};
    b.table.align = {'l', 'l', 'r', 'r', 'r', 'r', 'r', 'r', 'r'};
    for (const RunSummary &s : model.summaries) {
        b.table.rows.push_back(cells(
            {s.label, s.topology.empty() ? "-" : s.topology,
             fmtCount(s.cores), fmtCount(s.shards),
             fmtCount(s.dir_banks), fmtNum(s.cycles), fmtNum(s.insts),
             fmtF3(s.throughput), fmtNum(s.rollbacks)}));
    }
    doc.blocks.push_back(std::move(b));
}

void
buildWasteSection(const ReportModel &model, Doc &doc)
{
    const std::string &bl = model.baseline().label;
    const std::string &cl = model.candidate().label;
    doc.blocks.push_back(heading(2, "Waste attribution"));
    doc.blocks.push_back(
        para("Whole-run cycles per waste bucket, summed over every "
             "profiled instruction; integer counts identical to each "
             "run's own `--waste-report` totals."));

    Block b;
    b.kind = Block::Kind::TableK;
    b.table.headers = {"bucket", bl + " (cycles)", cl + " (cycles)",
                       "delta", "rel"};
    b.table.align = {'l', 'r', 'r', 'r', 'r'};
    std::uint64_t base_wasted = 0, cand_wasted = 0;
    for (const BucketDelta &d : model.profile_diff.buckets) {
        b.table.rows.push_back(
            cells({d.bucket, fmtCount(d.base), fmtCount(d.cand),
                   fmtDelta(d.delta()),
                   fmtPct(double(d.base), double(d.cand))}));
        if (d.bucket != "execute") {
            base_wasted += d.base;
            cand_wasted += d.cand;
        }
    }
    b.table.rows.push_back(cells(
        {"total wasted", fmtCount(base_wasted), fmtCount(cand_wasted),
         fmtDelta(static_cast<std::int64_t>(cand_wasted) -
                  static_cast<std::int64_t>(base_wasted)),
         fmtPct(double(base_wasted), double(cand_wasted))}));
    doc.blocks.push_back(std::move(b));

    const auto sym_table = [&](const char *title,
                               const std::vector<PcDelta> &rows) {
        doc.blocks.push_back(heading(3, title));
        if (rows.empty()) {
            doc.blocks.push_back(para("None."));
            return;
        }
        Block t;
        t.kind = Block::Kind::TableK;
        t.table.headers = {"symbol", bl + " wasted", cl + " wasted",
                           "delta", "note"};
        t.table.align = {'l', 'r', 'r', 'r', 'l'};
        for (const PcDelta &d : rows) {
            const char *note = d.only_cand ? "new in candidate"
                               : d.only_base ? "gone in candidate"
                                             : "-";
            t.table.rows.push_back(
                cells({d.sym, fmtCount(d.base_wasted),
                       fmtCount(d.cand_wasted), fmtDelta(d.delta()),
                       note}));
        }
        doc.blocks.push_back(std::move(t));
    };
    sym_table("Top regressed symbols", model.profile_diff.regressed);
    sym_table("Top improved symbols", model.profile_diff.improved);
}

void
buildStatsSection(const ReportModel &model, Doc &doc)
{
    doc.blocks.push_back(heading(2, "Stat movements"));
    const auto table = [&](const std::vector<StatDelta> &rows) {
        Block t;
        t.kind = Block::Kind::TableK;
        t.table.headers = {"stat",
                           "field",
                           "unit",
                           model.baseline().label,
                           model.candidate().label,
                           "rel"};
        t.table.align = {'l', 'l', 'l', 'r', 'r', 'r'};
        for (const StatDelta &d : rows) {
            t.table.rows.push_back(
                cells({d.stat, d.field,
                       d.unit.empty() ? "-" : d.unit, fmtNum(d.base),
                       fmtNum(d.cand), fmtPct(d.base, d.cand)}));
        }
        doc.blocks.push_back(std::move(t));
    };
    if (model.stats_diff.top.empty()) {
        doc.blocks.push_back(
            para("No scalar stat moved between the runs."));
    } else {
        table(model.stats_diff.top);
    }

    doc.blocks.push_back(heading(3, "Percentile movements"));
    if (model.stats_diff.percentiles.empty()) {
        doc.blocks.push_back(
            para("No distribution percentile moved."));
    } else {
        table(model.stats_diff.percentiles);
    }

    doc.blocks.push_back(heading(3, "Group coverage"));
    const GroupPresence &p = model.stats_diff.presence;
    if (p.added.empty() && p.removed.empty()) {
        doc.blocks.push_back(
            para("Both runs expose the same stat groups."));
        return;
    }
    Block b;
    b.kind = Block::Kind::Bullets;
    for (const std::string &g : p.added)
        b.items.push_back("Added in " + model.candidate().label +
                          ": `" + g + "`");
    for (const std::string &g : p.removed)
        b.items.push_back("Removed from " + model.candidate().label +
                          ": `" + g + "`");
    doc.blocks.push_back(std::move(b));
}

void
buildScalingSection(const ReportModel &model, Doc &doc)
{
    const ScalingTable &sc = model.scaling;
    doc.blocks.push_back(heading(2, "Scaling along " + sc.axis));

    Block b;
    b.kind = Block::Kind::TableK;
    b.table.headers = {sc.axis,       "run",
                       "throughput",  "speedup",
                       "efficiency",  "core imbalance",
                       "shard imbalance"};
    b.table.align = {'r', 'l', 'r', 'r', 'r', 'r', 'r'};
    for (const ScalingRow &row : sc.rows) {
        b.table.rows.push_back(cells(
            {row.axis_label, row.summary.label,
             fmtF3(row.summary.throughput), fmtF3(row.speedup),
             fmtF3(row.efficiency), fmtF3(row.summary.core_imbalance),
             row.summary.shard_imbalance > 0.0
                 ? fmtF3(row.summary.shard_imbalance)
                 : "-"}));
    }
    doc.blocks.push_back(std::move(b));

    // Coordinator boundary causes: one column per cause seen anywhere.
    std::set<std::string> causes;
    for (const ScalingRow &row : sc.rows) {
        for (const auto &[cause, n] : row.summary.boundary_causes)
            causes.insert(cause);
    }
    if (!causes.empty()) {
        doc.blocks.push_back(
            heading(3, "Coordinator boundary causes"));
        Block t;
        t.kind = Block::Kind::TableK;
        t.table.headers = {sc.axis};
        t.table.align = {'r'};
        for (const std::string &c : causes) {
            t.table.headers.push_back(c);
            t.table.align.push_back('r');
        }
        for (const ScalingRow &row : sc.rows) {
            std::vector<std::string> texts = {row.axis_label};
            for (const std::string &c : causes) {
                auto it = row.summary.boundary_causes.find(c);
                texts.push_back(
                    it == row.summary.boundary_causes.end()
                        ? "-"
                        : fmtCount(it->second));
            }
            t.table.rows.push_back(cells(std::move(texts)));
        }
        doc.blocks.push_back(std::move(t));
    }

    doc.blocks.push_back(heading(3, "NoC traffic"));
    Block t;
    t.kind = Block::Kind::TableK;
    t.table.headers = {sc.axis,      "msgs",
                       "hops",       "links used",
                       "hot-link msgs", "hot-link busy"};
    t.table.align = {'r', 'r', 'r', 'r', 'r', 'r'};
    for (const ScalingRow &row : sc.rows) {
        t.table.rows.push_back(
            cells({row.axis_label, fmtNum(row.summary.msgs),
                   fmtNum(row.summary.hops),
                   fmtNum(row.summary.links_used),
                   fmtNum(row.summary.hot_link_msgs),
                   fmtNum(row.summary.hot_link_busy)}));
    }
    doc.blocks.push_back(std::move(t));
}

void
buildSweepSection(const ReportModel &model, Doc &doc)
{
    doc.blocks.push_back(heading(2, "Sweep points"));
    doc.blocks.push_back(
        para("Rows ingested from bench_scaling `--sweep-json`."));
    std::set<std::string> keys;
    for (const Json &row : model.sweep_rows) {
        for (const auto &[key, value] : row.object())
            keys.insert(key);
    }
    Block b;
    b.kind = Block::Kind::TableK;
    for (const std::string &k : keys) {
        b.table.headers.push_back(k);
        b.table.align.push_back('r');
    }
    for (const Json &row : model.sweep_rows) {
        std::vector<std::string> texts;
        for (const std::string &k : keys) {
            const Json &v = row[k];
            switch (v.kind()) {
              case Json::Kind::Number:
                texts.push_back(fmtNum(v.asDouble()));
                break;
              case Json::Kind::String:
                texts.push_back(v.asString());
                break;
              case Json::Kind::Bool:
                texts.push_back(v.asBool() ? "true" : "false");
                break;
              default:
                texts.push_back("-");
                break;
            }
        }
        b.table.rows.push_back(cells(std::move(texts)));
    }
    doc.blocks.push_back(std::move(b));
}

void
buildHeatmapSections(const ReportModel &model, Doc &doc)
{
    for (std::size_t i = 0; i < model.runs.size(); ++i) {
        const HostDeterministic &host = model.runs[i].stats.host;
        if (!host.present || host.messages.empty())
            continue;
        doc.blocks.push_back(
            heading(2, "Cross-shard message heatmap - " +
                           model.runs[i].label));
        std::uint64_t max = 0;
        for (const auto &row : host.messages) {
            for (std::uint64_t n : row)
                max = std::max(max, n);
        }
        Block b;
        b.kind = Block::Kind::TableK;
        b.table.headers = {"src \\ dst"};
        b.table.align = {'l'};
        for (std::size_t d = 0; d < host.messages.size(); ++d) {
            b.table.headers.push_back("shard " + std::to_string(d));
            b.table.align.push_back('r');
        }
        for (std::size_t s = 0; s < host.messages.size(); ++s) {
            std::vector<Cell> row;
            row.push_back(Cell{"shard " + std::to_string(s), -1.0});
            for (std::size_t d = 0; d < host.messages[s].size(); ++d) {
                const std::uint64_t n = host.messages[s][d];
                Cell c;
                c.text = s == d ? "-" : fmtCount(n);
                c.shade = (max > 0 && s != d)
                              ? double(n) / double(max)
                              : 0.0;
                row.push_back(std::move(c));
            }
            b.table.rows.push_back(std::move(row));
        }
        doc.blocks.push_back(std::move(b));
    }
}

void
buildFlameSection(const ReportModel &model, Doc &doc)
{
    doc.blocks.push_back(heading(2, "Flamegraph diff"));
    doc.blocks.push_back(
        para("Folded stacks (`symbol;bucket`) with cycles in each "
             "run; the full diff is also available via "
             "`--folded-diff` for flamegraph.pl / inferno."));
    std::vector<FoldedDiffRow> rows = model.profile_diff.folded;
    std::sort(rows.begin(), rows.end(),
              [](const FoldedDiffRow &a, const FoldedDiffRow &b) {
                  const std::uint64_t da = a.cand > a.base
                                               ? a.cand - a.base
                                               : a.base - a.cand;
                  const std::uint64_t db = b.cand > b.base
                                               ? b.cand - b.base
                                               : b.base - b.cand;
                  if (da != db)
                      return da > db;
                  return a.stack < b.stack;
              });
    if (rows.size() > model.top_n * 2)
        rows.resize(model.top_n * 2);
    Block b;
    b.kind = Block::Kind::Flame;
    for (const FoldedDiffRow &r : rows)
        b.flame_max = std::max({b.flame_max, r.base, r.cand});
    b.flame = std::move(rows);
    doc.blocks.push_back(std::move(b));
}

Doc
buildDoc(const ReportModel &model)
{
    Doc doc;
    doc.title = "fenceless cross-run report";
    buildRunsSection(model, doc);
    if (model.has_profile_diff)
        buildWasteSection(model, doc);
    if (model.has_diff)
        buildStatsSection(model, doc);
    if (!model.axis.empty() && !model.scaling.rows.empty())
        buildScalingSection(model, doc);
    if (!model.sweep_rows.empty())
        buildSweepSection(model, doc);
    buildHeatmapSections(model, doc);
    if (model.has_profile_diff)
        buildFlameSection(model, doc);
    return doc;
}

// ---------------------------------------------------------------------
// Markdown renderer
// ---------------------------------------------------------------------

void
renderMarkdownTable(std::ostream &os, const Table &t)
{
    os << "|";
    for (const std::string &h : t.headers)
        os << " " << h << " |";
    os << "\n|";
    for (std::size_t c = 0; c < t.headers.size(); ++c) {
        const char a = c < t.align.size() ? t.align[c] : 'l';
        os << (a == 'r' ? " ---: |" : " --- |");
    }
    os << "\n";
    for (const auto &row : t.rows) {
        os << "|";
        for (const Cell &cell : row)
            os << " " << cell.text << " |";
        os << "\n";
    }
}

void
renderMarkdown(std::ostream &os, const Doc &doc)
{
    os << "# " << doc.title << "\n";
    for (const Block &b : doc.blocks) {
        switch (b.kind) {
          case Block::Kind::Heading:
            os << "\n";
            for (int i = 0; i < b.level; ++i)
                os << "#";
            os << " " << b.text << "\n";
            break;
          case Block::Kind::Para:
            os << "\n" << b.text << "\n";
            break;
          case Block::Kind::Bullets:
            os << "\n";
            for (const std::string &item : b.items)
                os << "- " << item << "\n";
            break;
          case Block::Kind::TableK:
            os << "\n";
            renderMarkdownTable(os, b.table);
            break;
          case Block::Kind::Flame:
            os << "\n```\n";
            for (const FoldedDiffRow &r : b.flame) {
                os << r.stack << " " << r.base << " " << r.cand
                   << " (" << fmtDelta(
                          static_cast<std::int64_t>(r.cand) -
                          static_cast<std::int64_t>(r.base))
                   << ")\n";
            }
            os << "```\n";
            break;
        }
    }
}

// ---------------------------------------------------------------------
// HTML renderer
// ---------------------------------------------------------------------

void
htmlEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '&': os << "&amp;"; break;
          case '<': os << "&lt;"; break;
          case '>': os << "&gt;"; break;
          case '"': os << "&quot;"; break;
          default: os << c; break;
        }
    }
}

const char *html_css =
    "body{font-family:ui-monospace,monospace;margin:2em;"
    "color:#1a1a2e;max-width:72em}\n"
    "h1{border-bottom:2px solid #444}\n"
    "table{border-collapse:collapse;margin:0.5em 0}\n"
    "th,td{border:1px solid #bbb;padding:2px 8px}\n"
    "th{background:#eee}\n"
    "td.r{text-align:right}\n"
    ".flame{margin:0.5em 0}\n"
    ".flame .row{display:flex;align-items:center;margin:1px 0;"
    "font-size:12px}\n"
    ".flame .sym{width:28em;overflow:hidden;text-overflow:ellipsis;"
    "white-space:nowrap}\n"
    ".flame .bars{flex:1}\n"
    ".flame .bar{height:7px;margin:1px 0}\n"
    ".flame .base{background:#6699cc}\n"
    ".flame .cand{background:#cc6666}\n";

void
renderHtmlTable(std::ostream &os, const Table &t)
{
    os << "<table>\n<tr>";
    for (const std::string &h : t.headers) {
        os << "<th>";
        htmlEscape(os, h);
        os << "</th>";
    }
    os << "</tr>\n";
    for (const auto &row : t.rows) {
        os << "<tr>";
        for (std::size_t c = 0; c < row.size(); ++c) {
            const char a = c < t.align.size() ? t.align[c] : 'l';
            os << "<td" << (a == 'r' ? " class=\"r\"" : "");
            if (row[c].shade > 0.0) {
                char style[96];
                std::snprintf(style, sizeof(style),
                              " style=\"background:rgba(204,102,102,"
                              "%.2f)\"",
                              row[c].shade * 0.85);
                os << style;
            }
            os << ">";
            htmlEscape(os, row[c].text);
            os << "</td>";
        }
        os << "</tr>\n";
    }
    os << "</table>\n";
}

void
renderHtml(std::ostream &os, const Doc &doc)
{
    os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
       << "<title>";
    htmlEscape(os, doc.title);
    os << "</title>\n<style>\n" << html_css << "</style>\n</head>\n"
       << "<body>\n<h1>";
    htmlEscape(os, doc.title);
    os << "</h1>\n";
    for (const Block &b : doc.blocks) {
        switch (b.kind) {
          case Block::Kind::Heading:
            os << "<h" << b.level << ">";
            htmlEscape(os, b.text);
            os << "</h" << b.level << ">\n";
            break;
          case Block::Kind::Para:
            os << "<p>";
            htmlEscape(os, b.text);
            os << "</p>\n";
            break;
          case Block::Kind::Bullets:
            os << "<ul>\n";
            for (const std::string &item : b.items) {
                os << "<li>";
                htmlEscape(os, item);
                os << "</li>\n";
            }
            os << "</ul>\n";
            break;
          case Block::Kind::TableK:
            renderHtmlTable(os, b.table);
            break;
          case Block::Kind::Flame: {
            os << "<div class=\"flame\">\n"
               << "<div class=\"row\"><span class=\"sym\">"
                  "baseline (blue) vs candidate (red), cycles"
                  "</span></div>\n";
            const double max =
                b.flame_max > 0 ? double(b.flame_max) : 1.0;
            for (const FoldedDiffRow &r : b.flame) {
                const int base_pct = static_cast<int>(
                    std::lround(double(r.base) / max * 100.0));
                const int cand_pct = static_cast<int>(
                    std::lround(double(r.cand) / max * 100.0));
                os << "<div class=\"row\"><span class=\"sym\" "
                      "title=\"";
                htmlEscape(os, r.stack);
                os << "\">";
                htmlEscape(os, r.stack);
                os << "</span><span class=\"bars\">"
                   << "<div class=\"bar base\" style=\"width:"
                   << base_pct << "%\"></div>"
                   << "<div class=\"bar cand\" style=\"width:"
                   << cand_pct << "%\"></div>"
                   << "</span><span> " << r.base << " / " << r.cand
                   << "</span></div>\n";
            }
            os << "</div>\n";
            break;
          }
        }
    }
    os << "</body>\n</html>\n";
}

} // namespace

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

ReportModel
buildReport(std::vector<RunInput> runs, std::vector<Json> sweep_rows,
            const std::string &axis, std::size_t top_n)
{
    ReportModel model;
    model.runs = std::move(runs);
    model.sweep_rows = std::move(sweep_rows);
    model.axis = axis;
    model.top_n = top_n;
    for (const RunInput &run : model.runs)
        model.summaries.push_back(summarize(run));
    model.has_diff = model.runs.size() >= 2;
    if (model.has_diff) {
        model.stats_diff = diffStats(model.baseline().stats,
                                     model.candidate().stats, top_n);
        if (model.baseline().has_profile &&
            model.candidate().has_profile) {
            model.has_profile_diff = true;
            model.profile_diff =
                diffProfiles(model.baseline().profile,
                             model.candidate().profile, top_n);
        }
    }
    if (!axis.empty())
        model.scaling = buildScaling(model.runs, axis);
    return model;
}

void
writeMarkdown(std::ostream &os, const ReportModel &model)
{
    renderMarkdown(os, buildDoc(model));
}

void
writeHtml(std::ostream &os, const ReportModel &model)
{
    renderHtml(os, buildDoc(model));
}

void
writeFoldedDiff(std::ostream &os, const ReportModel &model)
{
    for (const FoldedDiffRow &r : model.profile_diff.folded)
        os << r.stack << " " << r.base << " " << r.cand << "\n";
}

void
writeTriage(std::ostream &os, const ReportModel &model)
{
    if (model.runs.empty())
        return;
    os << "triage: baseline=" << model.baseline().label
       << " candidate=" << model.candidate().label << "\n";
    if (model.has_profile_diff) {
        std::uint64_t base_wasted = 0, cand_wasted = 0;
        for (const BucketDelta &d : model.profile_diff.buckets) {
            os << "triage: waste " << d.bucket << " " << d.base
               << " -> " << d.cand << " (" << fmtDelta(d.delta())
               << ")\n";
            if (d.bucket != "execute") {
                base_wasted += d.base;
                cand_wasted += d.cand;
            }
        }
        os << "triage: waste total_wasted " << base_wasted << " -> "
           << cand_wasted << " ("
           << fmtDelta(static_cast<std::int64_t>(cand_wasted) -
                       static_cast<std::int64_t>(base_wasted))
           << ")\n";
        for (std::size_t i = 0;
             i < model.profile_diff.regressed.size() && i < 3; ++i) {
            const PcDelta &d = model.profile_diff.regressed[i];
            os << "triage: regressed-symbol " << d.sym << " "
               << fmtDelta(d.delta()) << " wasted cycles\n";
        }
    }
    if (model.has_diff) {
        const RunSummary &b = model.summaries.front();
        const RunSummary &c = model.summaries.back();
        os << "triage: hot-link msgs " << fmtNum(b.hot_link_msgs)
           << " -> " << fmtNum(c.hot_link_msgs) << " ("
           << fmtPct(b.hot_link_msgs, c.hot_link_msgs)
           << "), busy " << fmtNum(b.hot_link_busy) << " -> "
           << fmtNum(c.hot_link_busy) << ", links used "
           << fmtNum(b.links_used) << " -> " << fmtNum(c.links_used)
           << "\n";
        for (std::size_t i = 0;
             i < model.stats_diff.top.size() && i < 5; ++i) {
            const StatDelta &d = model.stats_diff.top[i];
            os << "triage: stat " << d.stat << " " << fmtNum(d.base)
               << " -> " << fmtNum(d.cand) << " ("
               << fmtPct(d.base, d.cand) << ")\n";
        }
    }
}

} // namespace fenceless::analysis
