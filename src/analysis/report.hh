/**
 * @file
 * Report rendering for fl_report: one ReportModel built from the
 * loaded runs, rendered by independent writers into markdown, a
 * self-contained HTML page, a folded flamegraph diff, and a terse
 * triage block for CI regression messages.
 *
 * Every writer is deterministic: identical inputs produce
 * byte-identical output.  That is a hard interface guarantee -- the
 * test suite commits golden markdown and compares byte-for-byte --
 * so renderers only consume the deterministic fields the loaders
 * kept, format floats through fixed-precision helpers, and iterate
 * sorted containers.  No timestamps, no file paths, no git hashes.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/diff.hh"
#include "analysis/loader.hh"

namespace fenceless::analysis
{

/**
 * Everything a renderer needs, computed once.  runs[0] is the
 * baseline; when at least two runs are present the differential
 * sections compare the baseline against the *last* run (the
 * candidate), and the scaling section walks all runs in order.
 */
struct ReportModel
{
    std::vector<RunInput> runs;
    std::vector<RunSummary> summaries; //!< parallel to runs

    bool has_diff = false;         //!< >= 2 runs loaded
    StatsDiff stats_diff;          //!< baseline vs candidate
    bool has_profile_diff = false; //!< both ends carried profiles
    ProfileDiff profile_diff;

    std::string axis;    //!< "" disables the scaling section
    ScalingTable scaling;

    std::vector<Json> sweep_rows; //!< bench_scaling --sweep-json rows

    std::size_t top_n = 10;

    const RunInput &baseline() const { return runs.front(); }
    const RunInput &candidate() const { return runs.back(); }
};

/**
 * Build the model: summarize every run, diff baseline vs candidate
 * when two or more runs are present, and run scaling analysis when
 * @p axis is non-empty.
 */
ReportModel buildReport(std::vector<RunInput> runs,
                        std::vector<Json> sweep_rows,
                        const std::string &axis, std::size_t top_n);

/** The full report as markdown (the golden-tested format). */
void writeMarkdown(std::ostream &os, const ReportModel &model);

/**
 * The full report as one self-contained HTML page: no external
 * scripts or stylesheets, with the flamegraph diff rendered as
 * paired CSS bars and the per-link heatmap as shaded table cells.
 */
void writeHtml(std::ostream &os, const ReportModel &model);

/**
 * The flamegraph diff in difffolded format: one
 * "stack base_cycles cand_cycles" line per stack, sorted, directly
 * consumable by flamegraph.pl --negate / inferno-diff-folded.
 */
void writeFoldedDiff(std::ostream &os, const ReportModel &model);

/**
 * A terse triage block for CI: waste-bucket deltas, the worst
 * regressed symbols, and hot-link movement, as stable
 * "triage: ..." lines check_bench_regression.py can append to a
 * failure message.
 */
void writeTriage(std::ostream &os, const ReportModel &model);

// --- formatting helpers (shared with tests) --------------------------

/** Unsigned count, plain digits. */
std::string fmtCount(std::uint64_t v);

/** Signed delta with an explicit sign ("+12", "-3", "0"). */
std::string fmtDelta(std::int64_t v);

/** Fixed 3-decimal float ("0.875"). */
std::string fmtF3(double v);

/** Relative change as a percentage ("+12.5%"), "n/a" off zero. */
std::string fmtPct(double base, double cand);

} // namespace fenceless::analysis
