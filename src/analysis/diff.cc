#include "analysis/diff.hh"

#include <algorithm>
#include <cmath>
#include <set>

namespace fenceless::analysis
{

namespace
{

/** Deterministic ranking: |value| descending, key ascending. */
template <typename Row, typename ValueOf>
void
rankAbsDesc(std::vector<Row> &rows, ValueOf value_of)
{
    std::sort(rows.begin(), rows.end(),
              [&](const Row &a, const Row &b) {
                  const double va = std::fabs(value_of(a));
                  const double vb = std::fabs(value_of(b));
                  if (va != vb)
                      return va > vb;
                  return a < b;
              });
}

} // namespace

bool
operator<(const PcDelta &a, const PcDelta &b)
{
    return a.sym < b.sym;
}

bool
operator<(const StatDelta &a, const StatDelta &b)
{
    if (a.stat != b.stat)
        return a.stat < b.stat;
    return a.field < b.field;
}

ProfileDiff
diffProfiles(const ProfileRun &base, const ProfileRun &cand,
             std::size_t top_n)
{
    ProfileDiff out;

    // Whole-run bucket totals: exact integer sums over the per-PC
    // rows, so they equal each run's own --waste-report totals.
    const auto base_totals = base.bucketTotals();
    const auto cand_totals = cand.bucketTotals();
    const std::vector<std::string> &taxonomy =
        !base.buckets.empty() ? base.buckets : cand.buckets;
    std::set<std::string> seen;
    for (const std::string &b : taxonomy) {
        BucketDelta d{b, 0, 0};
        auto bit = base_totals.find(b);
        if (bit != base_totals.end())
            d.base = bit->second;
        auto cit = cand_totals.find(b);
        if (cit != cand_totals.end())
            d.cand = cit->second;
        out.buckets.push_back(d);
        seen.insert(b);
    }
    for (const auto &[b, total] : cand_totals) {
        if (seen.count(b))
            continue;
        BucketDelta d{b, 0, total};
        auto bit = base_totals.find(b);
        if (bit != base_totals.end())
            d.base = bit->second;
        out.buckets.push_back(d);
    }

    // Per-symbol deltas over the union of symbols; a symbol present
    // on only one side diffs against zero rather than erroring.
    std::vector<PcDelta> all;
    auto bi = base.pcs.begin();
    auto ci = cand.pcs.begin();
    while (bi != base.pcs.end() || ci != cand.pcs.end()) {
        PcDelta d;
        if (ci == cand.pcs.end() ||
            (bi != base.pcs.end() && bi->first < ci->first)) {
            d.sym = bi->first;
            d.base_wasted = bi->second.wasted();
            d.base_total = bi->second.total();
            d.only_base = true;
            ++bi;
        } else if (bi == base.pcs.end() || ci->first < bi->first) {
            d.sym = ci->first;
            d.cand_wasted = ci->second.wasted();
            d.cand_total = ci->second.total();
            d.only_cand = true;
            ++ci;
        } else {
            d.sym = bi->first;
            d.base_wasted = bi->second.wasted();
            d.base_total = bi->second.total();
            d.cand_wasted = ci->second.wasted();
            d.cand_total = ci->second.total();
            ++bi;
            ++ci;
        }
        all.push_back(std::move(d));
    }
    for (const PcDelta &d : all) {
        if (d.delta() > 0)
            out.regressed.push_back(d);
        else if (d.delta() < 0)
            out.improved.push_back(d);
    }
    rankAbsDesc(out.regressed,
                [](const PcDelta &d) { return double(d.delta()); });
    rankAbsDesc(out.improved,
                [](const PcDelta &d) { return double(d.delta()); });
    if (out.regressed.size() > top_n)
        out.regressed.resize(top_n);
    if (out.improved.size() > top_n)
        out.improved.resize(top_n);

    // Folded flamegraph diff ("sym;bucket base cand"): the union of
    // stacks of both runs, in sorted order.  Zero-both stacks cannot
    // occur (writers skip zero rows) but are filtered anyway.
    std::map<std::string, FoldedDiffRow> folded;
    for (const auto &[sym, row] : base.pcs) {
        for (const auto &[bucket, n] : row.cycles) {
            if (!n)
                continue;
            FoldedDiffRow &fr = folded[sym + ";" + bucket];
            fr.base = n;
        }
    }
    for (const auto &[sym, row] : cand.pcs) {
        for (const auto &[bucket, n] : row.cycles) {
            if (!n)
                continue;
            FoldedDiffRow &fr = folded[sym + ";" + bucket];
            fr.cand = n;
        }
    }
    for (auto &[stack, row] : folded) {
        row.stack = stack;
        out.folded.push_back(std::move(row));
    }
    return out;
}

double
StatDelta::rel() const
{
    if (base != 0.0)
        return (cand - base) / std::fabs(base);
    if (cand == 0.0)
        return 0.0;
    // Appeared from zero: rank above any finite relative change but
    // keep the value finite so sorting stays total.
    return cand > 0.0 ? 1e9 : -1e9;
}

StatsDiff
diffStats(const StatsRun &base, const StatsRun &cand, std::size_t top_n)
{
    StatsDiff out;

    for (const auto &[name, stats] : cand.groups) {
        if (!base.groups.count(name))
            out.presence.added.push_back(name);
    }
    for (const auto &[name, stats] : base.groups) {
        if (!cand.groups.count(name))
            out.presence.removed.push_back(name);
    }

    const auto unitOf = [&](const std::string &stat) -> std::string {
        auto cit = cand.schema.find(stat);
        if (cit != cand.schema.end())
            return cit->second.unit;
        auto bit = base.schema.find(stat);
        return bit != base.schema.end() ? bit->second.unit : "";
    };

    for (const auto &[gname, gstats] : base.groups) {
        auto cg = cand.groups.find(gname);
        if (cg == cand.groups.end())
            continue;
        for (const auto &[sname, sval] : gstats) {
            auto cs = cg->second.find(sname);
            if (cs == cg->second.end())
                continue;
            if (sval.kind == "distribution") {
                for (const char *field :
                     {"mean", "p50", "p95", "p99", "p999"}) {
                    StatDelta d;
                    d.group = gname;
                    d.stat = sname;
                    d.field = field;
                    d.unit = unitOf(sname);
                    d.base = sval.field(field);
                    d.cand = cs->second.field(field);
                    if (d.base != d.cand)
                        out.percentiles.push_back(std::move(d));
                }
                continue;
            }
            StatDelta d;
            d.group = gname;
            d.stat = sname;
            d.field = "value";
            d.unit = unitOf(sname);
            d.base = sval.primary();
            d.cand = cs->second.primary();
            if (d.base != d.cand)
                out.top.push_back(std::move(d));
        }
    }
    rankAbsDesc(out.top, [](const StatDelta &d) { return d.rel(); });
    rankAbsDesc(out.percentiles,
                [](const StatDelta &d) { return d.rel(); });
    if (out.top.size() > top_n)
        out.top.resize(top_n);
    if (out.percentiles.size() > top_n)
        out.percentiles.resize(top_n);
    return out;
}

namespace
{

double
imbalance(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0, max = 0.0;
    for (double v : values) {
        sum += v;
        max = std::max(max, v);
    }
    if (sum <= 0.0)
        return 0.0;
    return max / (sum / static_cast<double>(values.size()));
}

} // namespace

RunSummary
summarize(const RunInput &run)
{
    const StatsRun &s = run.stats;
    RunSummary out;
    out.label = run.label;
    out.topology = s.topology;
    out.shards = s.shards;
    out.dir_banks = s.dir_banks;
    out.cores =
        static_cast<std::uint32_t>(s.countGroups("core_"));

    out.cycles = s.maxOver("core_", "halt_tick");
    std::vector<double> per_core;
    for (const auto &[gname, gstats] : s.groups) {
        if (gname.compare(0, 5, "core_") != 0)
            continue;
        auto it = gstats.find(gname + ".instructions");
        if (it != gstats.end())
            per_core.push_back(it->second.primary());
    }
    for (double v : per_core)
        out.insts += v;
    out.core_imbalance = imbalance(per_core);
    out.throughput = out.cycles > 0.0 ? out.insts / out.cycles : 0.0;
    out.rollbacks = s.sumOver("spec_", "rollbacks");

    out.msgs = s.scalar("network", "network.msgs");
    out.hops = s.scalar("network", "network.hops");
    out.links_used = s.scalar("network", "network.links_used");
    out.hot_link_msgs = s.scalar("network", "network.hot_link_msgs");
    out.hot_link_busy = s.scalar("network", "network.hot_link_busy");

    if (s.host.present) {
        std::vector<double> events;
        for (const auto &row : s.host.shards)
            events.push_back(static_cast<double>(row.events));
        out.shard_imbalance = imbalance(events);
        out.boundary_causes = s.host.boundary_causes;
    }
    if (run.has_profile)
        out.waste = run.profile.bucketTotals();
    return out;
}

ScalingTable
buildScaling(const std::vector<RunInput> &runs, const std::string &axis)
{
    ScalingTable table;
    table.axis = axis;
    for (const RunInput &run : runs) {
        ScalingRow row;
        row.summary = summarize(run);
        if (axis == "cores") {
            row.axis_value = row.summary.cores;
        } else if (axis == "shards") {
            row.axis_value = row.summary.shards;
        } else if (axis == "dir_banks") {
            row.axis_value = row.summary.dir_banks;
        } else {
            row.axis_value = 0.0; // categorical (topology, label)
        }
        if (axis == "topology") {
            row.axis_label = row.summary.topology.empty()
                                 ? row.summary.label
                                 : row.summary.topology;
        } else if (row.axis_value > 0.0) {
            std::int64_t iv =
                static_cast<std::int64_t>(row.axis_value);
            row.axis_label = std::to_string(iv);
        } else {
            row.axis_label = row.summary.label;
        }
        table.rows.push_back(std::move(row));
    }
    if (table.rows.empty())
        return table;
    const ScalingRow &first = table.rows.front();
    for (ScalingRow &row : table.rows) {
        if (first.summary.throughput > 0.0)
            row.speedup =
                row.summary.throughput / first.summary.throughput;
        const double growth = first.axis_value > 0.0
                                  ? row.axis_value / first.axis_value
                                  : 0.0;
        row.efficiency =
            growth > 0.0 ? row.speedup / growth : row.speedup;
    }
    return table;
}

} // namespace fenceless::analysis
