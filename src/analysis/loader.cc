#include "analysis/loader.hh"

#include <fstream>
#include <sstream>

#include "base/stats_json.hh"
#include "sim/profiler.hh"

namespace fenceless::analysis
{

double
StatValue::primary() const
{
    if (kind == "distribution")
        return field("total");
    if (kind == "histogram")
        return field("n");
    return field("value");
}

std::vector<std::string>
StatsRun::groupNames() const
{
    std::vector<std::string> names;
    names.reserve(groups.size());
    for (const auto &[name, stats] : groups)
        names.push_back(name);
    return names;
}

const StatValue *
StatsRun::find(const std::string &group, const std::string &stat) const
{
    auto git = groups.find(group);
    if (git == groups.end())
        return nullptr;
    auto sit = git->second.find(stat);
    return sit == git->second.end() ? nullptr : &sit->second;
}

double
StatsRun::scalar(const std::string &group, const std::string &stat) const
{
    const StatValue *v = find(group, stat);
    return v ? v->primary() : 0.0;
}

namespace
{

bool
groupMatches(const std::string &name, const std::string &prefix)
{
    // "l2dir" matches itself and "l2dir.bank3", but not "l2dirx";
    // "core_" matches "core_0".."core_N".
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    if (name.size() == prefix.size())
        return true;
    const char next = name[prefix.size()];
    return prefix.back() == '_' || prefix.back() == '.' ||
           next == '.' || next == '_';
}

} // namespace

double
StatsRun::sumOver(const std::string &group_prefix,
                  const std::string &stat) const
{
    // Stats are keyed by their fully-qualified name, so the short
    // name is looked up as "<group>.<stat>" per matching group.
    double sum = 0.0;
    for (const auto &[name, stats] : groups) {
        if (!groupMatches(name, group_prefix))
            continue;
        auto sit = stats.find(name + "." + stat);
        if (sit != stats.end())
            sum += sit->second.primary();
    }
    return sum;
}

double
StatsRun::maxOver(const std::string &group_prefix,
                  const std::string &stat) const
{
    double best = 0.0;
    for (const auto &[name, stats] : groups) {
        if (!groupMatches(name, group_prefix))
            continue;
        auto sit = stats.find(name + "." + stat);
        if (sit != stats.end() && sit->second.primary() > best)
            best = sit->second.primary();
    }
    return best;
}

std::size_t
StatsRun::countGroups(const std::string &group_prefix) const
{
    std::size_t n = 0;
    for (const auto &[name, stats] : groups) {
        if (groupMatches(name, group_prefix))
            ++n;
    }
    return n;
}

std::uint64_t
ProfileRun::PcRow::total() const
{
    std::uint64_t sum = 0;
    for (const auto &[bucket, n] : cycles)
        sum += n;
    return sum;
}

std::uint64_t
ProfileRun::PcRow::wasted() const
{
    std::uint64_t sum = 0;
    for (const auto &[bucket, n] : cycles) {
        if (bucket != "execute")
            sum += n;
    }
    return sum;
}

std::map<std::string, std::uint64_t>
ProfileRun::bucketTotals() const
{
    std::map<std::string, std::uint64_t> totals;
    for (const std::string &b : buckets)
        totals[b] = 0;
    for (const auto &[sym, row] : pcs) {
        for (const auto &[bucket, n] : row.cycles)
            totals[bucket] += n;
    }
    return totals;
}

bool
readFile(const std::string &path, std::string &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

namespace
{

/**
 * Version gate shared by both document families: absent or non-numeric
 * versions are refused, as is anything outside [oldest, expected] --
 * newer layouts may have moved fields this tool would misread, and
 * silently comparing drifted layouts defeats the tool.  Families whose
 * revisions are purely additive (stats-json gained "p999" in v2) pass
 * an @p oldest below @p expected so archived artifacts keep loading:
 * the generic field copy in loadStatValue simply sees fewer keys, and
 * the diff layer treats an absent percentile as 0.
 */
bool
checkSchemaVersion(const Json &doc, int expected, const char *family,
                   int &found, std::string &error, int oldest = 0)
{
    if (oldest <= 0)
        oldest = expected;
    if (!doc.isObject()) {
        error = std::string(family) + " document is not a JSON object";
        return false;
    }
    const Json &v = doc["schema_version"];
    if (!v.isNumber()) {
        error = std::string(family) +
                " document has no schema_version (predates version " +
                std::to_string(expected) + "?); refusing to compare";
        return false;
    }
    found = static_cast<int>(v.asI64());
    if (found < oldest || found > expected) {
        error = std::string(family) + " schema_version " +
                std::to_string(found) + " is outside this tool's [" +
                std::to_string(oldest) + ", " + std::to_string(expected) +
                "]; refusing to compare";
        return false;
    }
    return true;
}

StatValue
loadStatValue(const Json &j)
{
    StatValue v;
    v.kind = j["kind"].asString();
    for (const auto &[name, field] : j.object()) {
        if (field.isNumber())
            v.fields[name] = field.asDouble();
    }
    // Histogram buckets stay out of the diff; count them instead.
    if (v.kind == "histogram" && j["buckets"].isArray())
        v.fields["num_buckets"] =
            static_cast<double>(j["buckets"].array().size());
    return v;
}

void
loadHost(const Json &host, HostDeterministic &out,
         std::uint32_t shards_hint)
{
    const Json &det = host["deterministic"];
    if (!det.isObject())
        return;
    out.present = true;
    out.quanta = det["quanta"].asU64();
    for (const auto &[cause, count] : det["boundary_causes"].object())
        out.boundary_causes[cause] = count.asU64();
    for (const Json &row : det["shards"].array()) {
        out.shards.push_back({row["events"].asU64(),
                              row["quanta"].asU64(),
                              row["idle_quanta"].asU64()});
    }
    std::size_t n = out.shards.size();
    if (n == 0)
        n = shards_hint;
    out.messages.assign(n, std::vector<std::uint64_t>(n, 0));
    for (const Json &row : det["messages"].array()) {
        const std::uint64_t src = row["src"].asU64();
        const std::uint64_t dst = row["dst"].asU64();
        if (src < n && dst < n)
            out.messages[src][dst] = row["count"].asU64();
    }
}

} // namespace

bool
loadStatsRun(const std::string &text, const std::string &label,
             StatsRun &out, std::string &error)
{
    Json doc;
    if (!Json::parse(text, doc, error)) {
        error = "stats-json: " + error;
        return false;
    }
    if (!checkSchemaVersion(doc, statistics::stats_schema_version,
                            "stats-json", out.schema_version, error,
                            /*oldest=*/1))
        return false;

    out.label = label;
    const Json &mode = doc["provenance"]["sim_mode"];
    if (mode.isObject()) {
        out.parallel_sim = mode["parallel_sim"].asU64() != 0;
        out.shards =
            static_cast<std::uint32_t>(mode["shards"].asU64());
        if (out.shards == 0)
            out.shards = 1;
        out.dir_banks =
            static_cast<std::uint32_t>(mode["dir_banks"].asU64());
        if (out.dir_banks == 0)
            out.dir_banks = 1;
        out.topology = mode["topology"].asString();
    }

    if (!doc["groups"].isObject()) {
        error = "stats-json: missing top-level \"groups\" object";
        return false;
    }
    for (const auto &[gname, gstats] : doc["groups"].object()) {
        auto &dst = out.groups[gname];
        for (const auto &[sname, sval] : gstats.object())
            dst[sname] = loadStatValue(sval);
    }
    for (const auto &[sname, entry] : doc["schema"].object()) {
        out.schema[sname] = {entry["kind"].asString(),
                             entry["unit"].asString(),
                             entry["desc"].asString()};
    }
    loadHost(doc["host"], out.host, out.shards);
    return true;
}

bool
loadProfileRun(const std::string &text, ProfileRun &out,
               std::string &error)
{
    Json doc;
    if (!Json::parse(text, doc, error)) {
        error = "profile: " + error;
        return false;
    }
    if (!checkSchemaVersion(doc, prof::profile_schema_version,
                            "profile", out.schema_version, error))
        return false;

    for (const Json &b : doc["buckets"].array())
        out.buckets.push_back(b.asString());
    for (const Json &row : doc["pcs"].array()) {
        ProfileRun::PcRow pc;
        pc.pc = row["pc"].asU64();
        pc.execs = row["execs"].asU64();
        for (const auto &[bucket, n] : row["cycles"].object())
            pc.cycles[bucket] = n.asU64();
        out.pcs[row["sym"].asString()] = std::move(pc);
    }
    for (const Json &row : doc["lines"].array()) {
        ProfileRun::LineRow line;
        line.touches = row["touches"].asU64();
        line.invalidations = row["invalidations"].asU64();
        line.ping_pongs = row["ping_pongs"].asU64();
        line.cores_touched =
            static_cast<std::uint32_t>(row["cores_touched"].asU64());
        line.false_sharing = row["false_sharing"].asBool();
        out.lines[row["sym"].asString()] = line;
    }
    for (const Json &row : doc["rollbacks"].array()) {
        const std::string key = row["cause"].asString() + "|" +
                                row["victim"].asString() + "|" +
                                row["line"].asString();
        ProfileRun::RollbackRow &rb = out.rollbacks[key];
        rb.count += row["count"].asU64();
        rb.discarded_insts += row["discarded_insts"].asU64();
    }
    return true;
}

bool
loadSweepRows(const std::string &text, std::vector<Json> &out,
              std::string &error)
{
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r') {
                blank = false;
                break;
            }
        }
        if (blank)
            continue;
        Json row;
        std::string row_error;
        if (!Json::parse(line, row, row_error)) {
            error = "sweep-json line " + std::to_string(lineno) +
                    ": " + row_error;
            return false;
        }
        if (!row.isObject()) {
            error = "sweep-json line " + std::to_string(lineno) +
                    ": expected one JSON object per line";
            return false;
        }
        out.push_back(std::move(row));
    }
    return true;
}

} // namespace fenceless::analysis
