/**
 * @file
 * Loaders that turn the simulator's own JSON artifacts back into
 * typed in-memory runs for cross-run analysis.
 *
 * Three document families feed fl_report:
 *
 *  - `--stats-json` documents (schema_version, provenance with
 *    sim_mode, groups of typed stats, the self-describing schema
 *    block, optional host telemetry, periodic snapshots);
 *  - `--profile-out` documents (waste-bucket taxonomy plus per-PC,
 *    per-line and per-rollback views);
 *  - `--sweep-json` rows from bench_scaling (one JSON object per
 *    line, one line per sweep point).
 *
 * Loading is strict about *versions* and tolerant about *content*:
 * a schema_version mismatch is refused outright (comparing documents
 * whose field meanings may have drifted silently is exactly the bug
 * class this tool exists to catch), but stat groups present in one
 * run and absent in another -- `l2dir.bank3` vs a monolithic `l2dir`,
 * telemetry on vs off -- load fine and surface later as added/removed
 * groups in the diff, never as a crash.
 *
 * Only deterministic fields are retained.  `host.wallclock_ns` and
 * the provenance git hash exist in the documents but never reach the
 * report, which is what keeps reports byte-identical for identical
 * simulated inputs.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/json.hh"

namespace fenceless::analysis
{

/**
 * One stat rendered as named numeric fields.  Scalars and formulas
 * carry {"value"}; distributions carry {"n", "mean", "min", "max",
 * "stdev", "p50", "p95", "p99", "p999", "total"}; histograms carry
 * {"n", "underflow", "overflow"}.  Keeping the fields generic lets the
 * diff layer walk every numeric facet -- including the
 * PercentileSketch percentiles -- with one code path, and makes the
 * loader tolerant of absent or extra percentile keys: schema-v1
 * artifacts (no "p999") load fine, with the missing field read as 0.
 */
struct StatValue
{
    std::string kind; //!< scalar | formula | distribution | histogram
    std::map<std::string, double> fields;

    /** The headline number: value for scalars, total for
     *  distributions, n for histograms. */
    double primary() const;

    double
    field(const std::string &name) const
    {
        auto it = fields.find(name);
        return it == fields.end() ? 0.0 : it->second;
    }
};

/** One entry of the self-describing stats schema block. */
struct SchemaEntry
{
    std::string kind;
    std::string unit;
    std::string desc;
};

/** The deterministic slice of host.deterministic telemetry. */
struct HostDeterministic
{
    struct ShardRow
    {
        std::uint64_t events = 0;
        std::uint64_t quanta = 0;
        std::uint64_t idle_quanta = 0;
    };

    bool present = false;
    std::uint64_t quanta = 0;
    std::map<std::string, std::uint64_t> boundary_causes;
    std::vector<ShardRow> shards;
    /** Cross-shard message counts, [src][dst]; square, zero-filled. */
    std::vector<std::vector<std::uint64_t>> messages;
};

/** One parsed --stats-json document. */
struct StatsRun
{
    std::string label;
    int schema_version = 0;

    // sim_mode provenance (deterministic; the git hash is dropped)
    bool parallel_sim = false;
    std::uint32_t shards = 1;
    std::uint32_t dir_banks = 1;
    std::string topology;

    /** group name -> stat full name -> value */
    std::map<std::string, std::map<std::string, StatValue>> groups;
    std::map<std::string, SchemaEntry> schema;
    HostDeterministic host;

    /** Group names in deterministic (sorted) order. */
    std::vector<std::string> groupNames() const;

    /**
     * Scalar/primary value of @p stat inside @p group; 0 when the
     * group or stat is absent (tolerance, not an error).
     */
    double scalar(const std::string &group,
                  const std::string &stat) const;

    const StatValue *find(const std::string &group,
                          const std::string &stat) const;

    /**
     * Sum @p stat's primary value over every group whose name starts
     * with @p group_prefix ("core_", "l1_", "l2dir").  Bridges banked
     * vs monolithic directory stats: summing over the "l2dir" prefix
     * covers both `l2dir` and every `l2dir.bank<b>`.
     */
    double sumOver(const std::string &group_prefix,
                   const std::string &stat) const;

    /** Max of @p stat's primary value over matching groups. */
    double maxOver(const std::string &group_prefix,
                   const std::string &stat) const;

    /** Number of groups matching @p group_prefix. */
    std::size_t countGroups(const std::string &group_prefix) const;
};

/** One parsed --profile-out document. */
struct ProfileRun
{
    struct PcRow
    {
        std::uint64_t pc = 0;
        std::uint64_t execs = 0;
        /** bucket name -> cycles; integer counts, diffed exactly. */
        std::map<std::string, std::uint64_t> cycles;

        std::uint64_t total() const;
        std::uint64_t wasted() const; //!< total minus execute
    };

    struct LineRow
    {
        std::uint64_t touches = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t ping_pongs = 0;
        std::uint32_t cores_touched = 0;
        bool false_sharing = false;
    };

    struct RollbackRow
    {
        std::uint64_t count = 0;
        std::uint64_t discarded_insts = 0;
    };

    int schema_version = 0;
    std::vector<std::string> buckets; //!< taxonomy, document order
    std::map<std::string, PcRow> pcs; //!< sym -> row
    std::map<std::string, LineRow> lines;
    /** "cause|victim|line" -> row */
    std::map<std::string, RollbackRow> rollbacks;

    /** Whole-run cycles per bucket (exact integer sums over pcs). */
    std::map<std::string, std::uint64_t> bucketTotals() const;
};

/** A label plus the artifacts loaded for one simulator run. */
struct RunInput
{
    std::string label;
    StatsRun stats;
    bool has_profile = false;
    ProfileRun profile;
};

/** Slurp @p path; false + @p error on I/O failure. */
bool readFile(const std::string &path, std::string &out,
              std::string &error);

/**
 * Parse @p text as a --stats-json document into @p out.  Fails on
 * malformed JSON, a missing/unknown schema_version, or a top-level
 * shape that is not an object.  Unknown groups and stats load fine.
 */
bool loadStatsRun(const std::string &text, const std::string &label,
                  StatsRun &out, std::string &error);

/** Parse @p text as a --profile-out document into @p out. */
bool loadProfileRun(const std::string &text, ProfileRun &out,
                    std::string &error);

/**
 * Parse bench_scaling --sweep-json rows: one JSON object per line,
 * blank lines skipped.  Rows keep their generic Json form; the
 * scaling renderer pulls named fields out.
 */
bool loadSweepRows(const std::string &text, std::vector<Json> &out,
                   std::string &error);

} // namespace fenceless::analysis
