/**
 * @file
 * Minimal JSON value type and recursive-descent parser for the
 * cross-run analysis layer.
 *
 * The simulator only ever *wrote* JSON until PR 9; fl_report is the
 * first consumer that reads it back, and it must not drag a third-
 * party dependency into the build (the container bakes in only the
 * C++ toolchain).  This parser covers exactly the documents our own
 * writers emit -- objects, arrays, strings with the escapes
 * jsonQuote() produces, numbers, booleans, null -- and reports
 * errors as values with a line/column position instead of throwing,
 * matching the harness's errors-as-values style.
 *
 * Objects keep their members in a sorted std::map: iteration order is
 * deterministic regardless of input order, which is what makes every
 * report rendered from parsed documents byte-identical for identical
 * inputs.  Duplicate keys take the last value, like every mainstream
 * JSON library.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fenceless::analysis
{

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    /**
     * Parse @p text into @p out.  On failure returns false and sets
     * @p error to a "line L, column C: what" message; @p out is left
     * null.  Trailing non-whitespace after the document is an error.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string &error);

    // --- accessors (safe on any kind; wrong-kind reads return a
    // --- zero/empty value rather than trapping, so lookups compose) --

    double asDouble(double fallback = 0.0) const
    {
        return kind_ == Kind::Number ? num_ : fallback;
    }

    /** Number as a non-negative integer count (negatives clamp to 0). */
    std::uint64_t
    asU64() const
    {
        if (kind_ != Kind::Number || num_ <= 0.0)
            return 0;
        return static_cast<std::uint64_t>(num_);
    }

    std::int64_t
    asI64() const
    {
        return kind_ == Kind::Number ? static_cast<std::int64_t>(num_)
                                     : 0;
    }

    bool asBool() const { return kind_ == Kind::Bool && bool_; }

    const std::string &asString() const { return str_; }

    const std::vector<Json> &array() const { return arr_; }

    const std::map<std::string, Json> &object() const { return obj_; }

    /**
     * Member lookup; a shared null value when absent or not an
     * object, so chains like j["host"]["deterministic"]["quanta"]
     * never dereference past a missing level.
     */
    const Json &operator[](const std::string &key) const;

    bool
    has(const std::string &key) const
    {
        return kind_ == Kind::Object && obj_.count(key) > 0;
    }

  private:
    friend class Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace fenceless::analysis
