/**
 * @file
 * Host-waste telemetry for the sharded parallel driver.
 *
 * The paper's waste-attribution lens, pointed at the simulator itself:
 * when one simulation is sharded across host threads (--shards=N), the
 * quantum-barrier driver can waste host cycles exactly the way the
 * guest machine wastes core cycles -- a laggard shard stalls everyone
 * at the barrier, mailbox drains serialize, short lookahead quanta
 * amortize nothing.  ShardTelemetry accounts for it per shard and per
 * quantum: events executed, busy / barrier-wait / mailbox-drain wall
 * time, cross-shard message counts per (src, dst) pair, idle quanta,
 * and the coordinator's boundary-cause breakdown.
 *
 * Determinism discipline: the counters split into two strictly
 * separate families.  *Deterministic* fields (event counts, quantum
 * counts, message counts, boundary causes) are pure functions of the
 * simulation and reproduce byte-for-byte run to run at a fixed shard
 * count.  *Wall-clock* fields (busy/barrier/drain ns, imbalance) vary
 * with host scheduling and are never mixed into deterministic output.
 *
 * Concurrency model: one ShardSlot per shard, cache-line aligned,
 * written only by its shard's host thread during a quantum; the
 * coordinator folds the per-quantum scratch fields in the barrier
 * completion step, while every shard thread is parked.  The message
 * grid is single-writer per cell (the sending shard's thread).  No
 * atomics anywhere; the barrier provides all ordering.  Disabled
 * telemetry costs one boolean test per quantum phase.
 *
 * Cost discipline: quanta are short (one cross-shard hop), so even a
 * steady_clock read per phase would not amortize -- the exact failure
 * mode this layer exists to expose.  The wall-clock phases are
 * therefore *sampled*: every sample_period-th quantum is timed (all
 * shards agree on which, since the decision is a pure function of the
 * coordinator step count), and the sums scale up at render time.
 * Ratios (utilization, imbalance factor) need no scaling at all.
 * With host tracing on, every quantum is timed -- the trace wants the
 * per-quantum slices, and an explicit diagnostic run has opted out of
 * the cheap mode.  Deterministic counters are exact every quantum
 * regardless.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"

namespace fenceless::harness
{

/** Which coordinator deadline chose a quantum boundary. */
enum class BoundaryCause : std::uint32_t
{
    Lookahead = 0, //!< conservative quantum: now + lookahead
    Snapshot,      //!< periodic stat-snapshot deadline
    Watchdog,      //!< hang-watchdog probe deadline
    Budget,        //!< max_cycles budget edge
    Idle,          //!< nothing pending: jump to the end of time
    NumCauses,
};

const char *boundaryCauseName(BoundaryCause c);

class ShardTelemetry
{
  public:
    /**
     * One shard's accounting.  Written by the shard's thread (totals
     * and scratch) and folded by the coordinator (events/quanta and
     * the cross-shard imbalance view) -- never concurrently, thanks to
     * the quantum barrier.
     */
    struct alignas(64) ShardSlot
    {
        // --- deterministic ---------------------------------------------
        std::uint64_t events = 0;      //!< events executed on this shard
        std::uint64_t quanta = 0;      //!< quanta participated in
        std::uint64_t idle_quanta = 0; //!< quanta with zero events

        // --- wall clock (sums over *sampled* quanta only) --------------
        std::uint64_t busy_ns = 0;    //!< inside eventq.run()
        std::uint64_t barrier_ns = 0; //!< parked at quantum barriers
        std::uint64_t drain_ns = 0;   //!< draining inbound mailboxes
        /** Sum over sampled quanta of (slowest shard's busy - own busy). */
        std::uint64_t imbalance_ns = 0;
        /** Sampled quanta in which this shard was the slowest. */
        std::uint64_t laggard_quanta = 0;
        std::uint64_t sampled_quanta = 0; //!< quanta with timing taken

        // --- per-quantum scratch (shard writes, coordinator folds) -----
        std::uint64_t q_busy_ns = 0;
        std::uint64_t last_pops = 0; //!< eventq pops at last boundary
    };

    /** The coordinator's own accounting (single-threaded by design). */
    struct Coordinator
    {
        std::uint64_t steps = 0;         //!< coordinatorStep() invocations
        std::uint64_t sampled_steps = 0; //!< steps with timing taken
        std::uint64_t ns = 0; //!< wall time inside sampled steps
        std::uint64_t causes[static_cast<std::size_t>(
            BoundaryCause::NumCauses)] = {};
    };

    /**
     * 1-in-N quantum sampling for the wall-clock phases.  The decision
     * is a pure function of the coordinator step count, so every shard
     * thread and the coordinator agree on which quanta are timed
     * without any extra synchronization.
     */
    static constexpr std::uint64_t sample_period = 8;

    static bool
    sampleQuantum(std::uint64_t step)
    {
        return (step & (sample_period - 1)) == 0;
    }

    /** Size for @p shards and enable; idempotent per System. */
    void configure(std::uint32_t shards);

    bool enabled() const { return enabled_; }
    std::uint32_t shards() const { return shards_; }

    ShardSlot &slot(std::uint32_t s) { return slots_[s]; }
    const ShardSlot &slot(std::uint32_t s) const { return slots_[s]; }

    Coordinator &coord() { return coord_; }
    const Coordinator &coord() const { return coord_; }

    /** Count one cross-shard message (called on the sending thread). */
    void
    countMessage(std::uint32_t src, std::uint32_t dst)
    {
        ++msgs_[static_cast<std::size_t>(src) * shards_ + dst];
    }

    std::uint64_t
    messages(std::uint32_t src, std::uint32_t dst) const
    {
        return msgs_[static_cast<std::size_t>(src) * shards_ + dst];
    }

    // --- derived views ---------------------------------------------------

    /** Total busy / total (busy + barrier + drain); 0 when unmeasured. */
    double utilization() const;

    /** Max shard busy / mean shard busy; 0 when unmeasured. */
    double imbalanceFactor() const;

    /**
     * The deterministic counters as one JSON object (quanta, boundary
     * causes, per-shard event counts, (src, dst) message counts).
     * Byte-identical run to run at a fixed shard count -- what the
     * determinism tests compare.  @p indent prefixes nested lines.
     */
    std::string deterministicJson(const std::string &indent = "  ") const;

    /**
     * The full "host" stats-json section: shard count, lookahead, the
     * deterministic object, and a separate "wallclock_ns" object.
     */
    void writeHostJson(std::ostream &os, Tick lookahead,
                       const std::string &indent = "  ") const;

    /** Monotonic host time in ns (steady_clock). */
    static std::uint64_t nowNs();

  private:
    bool enabled_ = false;
    std::uint32_t shards_ = 0;
    std::vector<ShardSlot> slots_;
    /** Cross-shard message counts, indexed [src * shards_ + dst]. */
    std::vector<std::uint64_t> msgs_;
    Coordinator coord_;
};

} // namespace fenceless::harness
