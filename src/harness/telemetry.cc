#include "harness/telemetry.hh"

#include <chrono>
#include <ostream>
#include <sstream>

namespace fenceless::harness
{

const char *
boundaryCauseName(BoundaryCause c)
{
    switch (c) {
      case BoundaryCause::Lookahead: return "lookahead";
      case BoundaryCause::Snapshot: return "snapshot";
      case BoundaryCause::Watchdog: return "watchdog";
      case BoundaryCause::Budget: return "budget";
      case BoundaryCause::Idle: return "idle";
      case BoundaryCause::NumCauses: break;
    }
    return "?";
}

void
ShardTelemetry::configure(std::uint32_t shards)
{
    enabled_ = true;
    shards_ = shards;
    slots_.assign(shards, ShardSlot{});
    msgs_.assign(static_cast<std::size_t>(shards) * shards, 0);
    coord_ = Coordinator{};
}

std::uint64_t
ShardTelemetry::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
ShardTelemetry::utilization() const
{
    std::uint64_t busy = 0, total = 0;
    for (const ShardSlot &s : slots_) {
        busy += s.busy_ns;
        total += s.busy_ns + s.barrier_ns + s.drain_ns;
    }
    return total ? static_cast<double>(busy)
                       / static_cast<double>(total)
                 : 0.0;
}

double
ShardTelemetry::imbalanceFactor() const
{
    std::uint64_t max = 0, sum = 0;
    for (const ShardSlot &s : slots_) {
        sum += s.busy_ns;
        if (s.busy_ns > max)
            max = s.busy_ns;
    }
    if (sum == 0 || slots_.empty())
        return 0.0;
    const double mean = static_cast<double>(sum)
                        / static_cast<double>(slots_.size());
    return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
}

std::string
ShardTelemetry::deterministicJson(const std::string &indent) const
{
    std::ostringstream os;
    const std::string in1 = indent + "  ";
    const std::string in2 = in1 + "  ";
    std::uint64_t quanta = 0;
    for (std::uint64_t c : coord_.causes)
        quanta += c;
    os << "{\n" << in1 << "\"quanta\": " << quanta << ",\n";
    os << in1 << "\"boundary_causes\": {";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(BoundaryCause::NumCauses); ++c) {
        os << (c ? ", " : "") << "\""
           << boundaryCauseName(static_cast<BoundaryCause>(c))
           << "\": " << coord_.causes[c];
    }
    os << "},\n";
    os << in1 << "\"shards\": [";
    for (std::uint32_t s = 0; s < shards_; ++s) {
        os << (s ? "," : "") << "\n" << in2 << "{\"events\": "
           << slots_[s].events << ", \"quanta\": " << slots_[s].quanta
           << ", \"idle_quanta\": " << slots_[s].idle_quanta << "}";
    }
    os << "\n" << in1 << "],\n";
    os << in1 << "\"messages\": [";
    bool first = true;
    for (std::uint32_t src = 0; src < shards_; ++src) {
        for (std::uint32_t dst = 0; dst < shards_; ++dst) {
            const std::uint64_t count = messages(src, dst);
            if (count == 0)
                continue;
            os << (first ? "" : ",") << "\n" << in2 << "{\"src\": "
               << src << ", \"dst\": " << dst << ", \"count\": "
               << count << "}";
            first = false;
        }
    }
    os << "\n" << in1 << "]\n" << indent << "}";
    return os.str();
}

void
ShardTelemetry::writeHostJson(std::ostream &os, Tick lookahead,
                              const std::string &indent) const
{
    const std::string in1 = indent + "  ";
    const std::string in2 = in1 + "  ";
    os << "{\n" << in1 << "\"shards\": " << shards_ << ",\n"
       << in1 << "\"lookahead\": " << lookahead << ",\n"
       << in1 << "\"deterministic\": " << deterministicJson(in1)
       << ",\n";
    os << in1 << "\"wallclock_ns\": {\n";
    os << in2 << "\"sample_period\": " << sample_period << ",\n";
    os << in2 << "\"shards\": [";
    for (std::uint32_t s = 0; s < shards_; ++s) {
        const ShardSlot &sl = slots_[s];
        os << (s ? "," : "") << "\n" << in2 << "  {\"busy\": "
           << sl.busy_ns << ", \"barrier\": " << sl.barrier_ns
           << ", \"drain\": " << sl.drain_ns << ", \"imbalance\": "
           << sl.imbalance_ns << ", \"laggard_quanta\": "
           << sl.laggard_quanta << ", \"sampled_quanta\": "
           << sl.sampled_quanta << "}";
    }
    os << "\n" << in2 << "],\n";
    os << in2 << "\"coordinator\": {\"steps\": " << coord_.steps
       << ", \"sampled_steps\": " << coord_.sampled_steps
       << ", \"ns\": " << coord_.ns << "},\n";
    os << in2 << "\"utilization\": " << utilization() << ",\n";
    os << in2 << "\"imbalance_factor\": " << imbalanceFactor() << "\n";
    os << in1 << "}\n" << indent << "}";
}

} // namespace fenceless::harness
