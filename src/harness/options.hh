/**
 * @file
 * Command-line option parsing for the examples and benchmark binaries.
 *
 * Keeps the binaries scriptable without pulling in a flags library:
 *
 *     harness::Options opts(argc, argv);
 *     harness::SystemConfig cfg = opts.applyTo(defaults);
 *     if (opts.csv()) ...
 *
 * Recognised options (all optional):
 *     --cores=N            number of cores
 *     --model=sc|tso|rmo   consistency model
 *     --spec=off|on-demand|continuous
 *     --granularity=block|per-store
 *     --overflow=stall|rollback
 *     --sb-size=N          store-buffer entries
 *     --l1-kb=N            L1 size in KiB
 *     --l2-kb=N            L2 size in KiB
 *     --dram-latency=N     cycles
 *     --net-latency=N      crossbar flat latency in cycles
 *     --topology=T         interconnect topology: crossbar|ring|mesh
 *                          (unknown values are fatal, like --model)
 *     --hop-latency=N      per-hop latency for ring/mesh (cycles)
 *     --dir-banks=N        directory banks (power of two, 1..64;
 *                          bad values warn and round down, never
 *                          abort -- every bank count is functionally
 *                          equivalent)
 *     --scale=N            workload scaling factor
 *     --seed=N             workload seed where applicable
 *     --jobs=N             host threads for independent runs
 *                          (0/default = hardware concurrency,
 *                          1 = sequential legacy path)
 *     --csv                machine-readable table output
 *     --trace=f1,f2        structured-trace flags (see trace.hh)
 *     --trace-out=FILE     Chrome trace-event / Perfetto JSON output
 *                          (implies --trace=all when --trace is absent)
 *     --stats-json=FILE    full stat registry as JSON
 *     --stats-interval=N   periodic stat snapshots every N cycles
 *     --sweep-json=FILE    benchmarks that sweep an axis also write
 *                          one JSON object per sweep point (consumed
 *                          by fl_report --sweep-json)
 *     --profile-out=FILE   waste-attribution profile as JSON, plus
 *                          FILE.folded (flamegraph folded stacks)
 *     --waste-report       print the top-N waste table to stdout
 *     --blackbox-out=FILE  dump the flight recorder after the run as
 *                          Chrome trace-event JSON (same format as
 *                          --trace-out, but only the ring tail)
 *     --blackbox=N         flight-recorder depth per component
 *                          (default 256; 0 disables the recorder)
 *     --watchdog-interval=N  hang-watchdog window in cycles
 *                          (default 100000; 0 disables the watchdog)
 *     --watchdog-storm=N   rollbacks per window that classify a hang
 *                          as a rollback storm (default 256)
 *     --parallel-sim=0|1   shard one simulation across host threads
 *                          (0 = single-threaded reference; stats,
 *                          profile and blackbox output are identical
 *                          either way -- see harness/system.hh)
 *     --shards=N           shard count when --parallel-sim is on
 *                          (default: hardware concurrency, clamped to
 *                          cores + 1; validation warns, never aborts)
 *     --shard-report       print the host-waste shard report after the
 *                          run (implies --host-telemetry)
 *     --host-telemetry=0|1 per-shard busy/barrier/drain accounting,
 *                          the stats-json "host" section and host
 *                          tracks in --trace-out
 *     --tail-sample=N      per-request span tracing: trace 1 in N
 *                          misses end to end (1 = every miss; the
 *                          sampled set is byte-identical for any
 *                          --shards / --jobs value)
 *     --tail-report        print the critical-path stage-attribution
 *                          table after the run (implies
 *                          --tail-sample=64 when unset)
 *     --outliers-out=FILE  write the top-K slowest-request dossiers
 *                          as JSON (implies span tracing)
 *     --outliers=K         dossiers to keep (default 10)
 *     --help               print usage and exit
 *
 * Output paths (--trace-out, --stats-json, --profile-out) are opened
 * for writing at parse time and rejected immediately when unwritable,
 * so a bad path fails before the simulation instead of after it.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "harness/system.hh"

namespace fenceless::harness
{

class Options
{
  public:
    /**
     * Parse argv.  Unknown --options are fatal (typos should not
     * silently run the default experiment); positional arguments are
     * not supported.  `--help` prints usage and exits.
     */
    Options(int argc, char **argv);

    /** Overlay the parsed options onto @p base and return the result. */
    SystemConfig applyTo(SystemConfig base) const;

    bool csv() const { return csv_; }
    unsigned scale() const { return scale_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Worker threads for host-parallel sweeps (SweepRunner); 0 means
     * "pick the hardware concurrency".  Output is byte-identical for
     * every value -- see harness/sweep.hh.
     */
    unsigned jobs() const { return jobs_; }

    /** Path for --trace-out ("" = no trace export requested). */
    std::string traceOut() const { return get("trace-out"); }

    /** Path for --stats-json ("" = no JSON stats requested). */
    std::string statsJson() const { return get("stats-json"); }

    /**
     * Path for --sweep-json ("" = not requested): benchmarks that
     * sweep an axis append one JSON object per sweep point, one per
     * line, for fl_report's scaling analysis.
     */
    std::string sweepJson() const { return get("sweep-json"); }

    /** Path for --profile-out ("" = no profile export requested). */
    std::string profileOut() const { return get("profile-out"); }

    /** Path for --blackbox-out ("" = no on-demand dump requested). */
    std::string blackboxOut() const { return get("blackbox-out"); }

    /** @return true if --waste-report was passed. */
    bool wasteReport() const { return has("waste-report"); }

    /** @return true if --shard-report was passed. */
    bool shardReport() const { return has("shard-report"); }

    /** @return true if --tail-report was passed. */
    bool tailReport() const { return has("tail-report"); }

    /** Path for --outliers-out ("" = no dossiers requested). */
    std::string outliersOut() const { return get("outliers-out"); }

    /** @return true if any profiler output was requested. */
    bool
    profiling() const
    {
        return has("profile-out") || has("waste-report");
    }

    /** @return true if the user passed the given option. */
    bool has(const std::string &name) const
    {
        return values_.count(name) > 0;
    }

    /** Raw string value of an option ("" if absent). */
    std::string get(const std::string &name) const;

    /** Integer value of an option (or @p fallback). */
    std::uint64_t getInt(const std::string &name,
                         std::uint64_t fallback) const;

    static void printUsage(const std::string &prog);

  private:
    std::map<std::string, std::string> values_;
    bool csv_ = false;
    unsigned scale_ = 1;
    std::uint64_t seed_ = 42;
    unsigned jobs_ = 0;
};

} // namespace fenceless::harness
