/**
 * @file
 * Process exit codes shared by every example and benchmark binary, so
 * scripts and CI can tell failure modes apart without parsing stderr:
 *
 *   0    success
 *   1    fatal() -- user/configuration error, or any generic failure
 *   3    the simulation terminated but a workload postcondition failed
 *   4    the run hung: the watchdog aborted it (stall dossier printed)
 *        or the cycle budget ran out before every core halted
 *   134  SIGABRT -- panic() tripped a simulator invariant (the shell
 *        reports 128+SIGABRT; an incident dump precedes the abort)
 *
 * Documented in README.md ("Debugging hangs and crashes").
 */

#pragma once

namespace fenceless::harness
{

inline constexpr int exit_ok = 0;
inline constexpr int exit_fatal = 1;
inline constexpr int exit_postcondition = 3;
inline constexpr int exit_hang = 4;

} // namespace fenceless::harness
