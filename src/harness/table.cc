#include "harness/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::harness
{

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::addRow(std::vector<std::string> cells)
{
    flAssert(cells.size() == headers_.size(),
             "table row has ", cells.size(), " cells, expected ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-');
            if (c + 1 < widths.size())
                os << "+";
        }
        os << "\n";
    };

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << " ";
            if (c == 0) {
                os << std::left << std::setw(
                       static_cast<int>(widths[c])) << cells[c];
            } else {
                os << std::right << std::setw(
                       static_cast<int>(widths[c])) << cells[c];
            }
            os << " ";
            if (c + 1 < cells.size())
                os << "|";
        }
        os << "\n";
    };

    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    line(headers_);
    for (const auto &row : rows_)
        line(row);
}

} // namespace fenceless::harness
