#include "harness/sweep.hh"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace fenceless::harness
{

namespace
{

/**
 * One worker's share of the sweep.  The owner pops newest-first from
 * the back; thieves take oldest-first from the front, so a steal grabs
 * the task the owner would reach last.  A plain mutex per deque is
 * plenty here: tasks are whole simulation runs (milliseconds to
 * seconds), so queue traffic is negligible next to the work.
 */
struct WorkerDeque
{
    std::mutex mutex;
    std::deque<std::size_t> tasks; //!< indices into the shared batch
};

} // namespace

unsigned
SweepRunner::resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

void
SweepRunner::runAll(std::vector<std::function<void()>> thunks) const
{
    const std::size_t n = thunks.size();
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    if (workers <= 1) {
        // Sequential path: no threads created, exceptions propagate
        // directly.
        for (auto &thunk : thunks)
            thunk();
        return;
    }

    // All tasks are known up front and none spawns more, so an empty
    // set of deques means the sweep is fully claimed and a worker that
    // finds nothing to pop or steal can simply retire.
    std::vector<WorkerDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i)
        deques[i % workers].tasks.push_back(i);

    const std::size_t none = n; // sentinel: no task claimed
    std::mutex error_mutex;
    std::size_t error_index = none;
    std::exception_ptr error;

    auto worker = [&](unsigned self) {
        for (;;) {
            std::size_t task = none;
            {
                std::lock_guard<std::mutex> lock(deques[self].mutex);
                auto &mine = deques[self].tasks;
                if (!mine.empty()) {
                    task = mine.back();
                    mine.pop_back();
                }
            }
            for (unsigned delta = 1; task == none && delta < workers;
                 ++delta) {
                const unsigned victim = (self + delta) % workers;
                std::lock_guard<std::mutex> lock(deques[victim].mutex);
                auto &theirs = deques[victim].tasks;
                if (!theirs.empty()) {
                    task = theirs.front();
                    theirs.pop_front();
                }
            }
            if (task == none)
                return;
            try {
                thunks[task]();
            } catch (...) {
                // Keep the failure the sequential run would hit first.
                std::lock_guard<std::mutex> lock(error_mutex);
                if (task < error_index) {
                    error_index = task;
                    error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto &thread : threads)
        thread.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace fenceless::harness
