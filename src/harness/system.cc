#include "harness/system.hh"

#include <algorithm>
#include <array>
#include <barrier>
#include <iomanip>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/provenance.hh"
#include "base/stats_json.hh"
#include "base/trace.hh"
#include "harness/table.hh"
#include "isa/interp.hh"
#include "sim/blackbox.hh"

namespace fenceless::harness
{

namespace
{

/**
 * Stat-group / trace-component name of directory bank @p b.  The
 * single-bank system keeps the historical "l2dir" name so every stats,
 * trace and blackbox document stays byte-identical to pre-banking runs.
 */
std::string
dirBankName(std::uint32_t banks, std::uint32_t b)
{
    return banks == 1 ? std::string("l2dir")
                      : "l2dir.bank" + std::to_string(b);
}

/** WaitNode id for directory-side nodes: 0 = legacy, else bank + 1. */
std::uint32_t
dirWaitId(std::uint32_t banks, std::uint32_t b)
{
    return banks == 1 ? 0 : b + 1;
}

} // namespace

sim::SimContext &
System::makeShardContexts()
{
    shards_ = config_.shards;
    if (shards_ < 1)
        shards_ = 1;
    if (shards_ > config_.num_cores + 1)
        shards_ = config_.num_cores + 1;
    for (std::uint32_t s = 0; s < shards_; ++s)
        shard_ctx_.push_back(std::make_unique<sim::SimContext>(stats_));
    return *shard_ctx_.front();
}

std::uint32_t
System::shardOfCore(std::uint32_t core) const
{
    if (shards_ == 1)
        return 0;
    // Banked: cores spread contiguously over ALL shards -- the banks
    // interleave over the same shards, so no shard is a dedicated hub.
    if (config_.dir_banks >= 2)
        return core * shards_ / config_.num_cores;
    // Monolithic: contiguous balanced partition over shards 1..N-1
    // (shard 0 is the directory side).
    return 1 + core * (shards_ - 1) / config_.num_cores;
}

std::uint32_t
System::shardOfBank(std::uint32_t bank) const
{
    // Round-robin bank homes; the monolithic directory stays on the
    // dedicated shard 0.
    if (shards_ == 1 || config_.dir_banks == 1)
        return 0;
    return bank % shards_;
}

std::uint32_t
System::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>(addr / config_.l2.block_size)
           & (config_.dir_banks - 1);
}

std::uint32_t
System::totalHalted() const
{
    std::uint32_t total = 0;
    for (const ShardCounter &c : shard_halted_)
        total += c.halted;
    return total;
}

Tick
System::lookahead() const
{
    // The minimum cross-shard delay: every shard interaction crosses
    // the network, and a message sent at t arrives no earlier than
    // t + (route latency) + 1 (serialization is at least one cycle,
    // since every message carries at least an 8-byte header).  For
    // ring/mesh the minimum route is a single hop.
    return config_.net.minDelay();
}

std::vector<prof::CodeSym>
System::codeSyms() const
{
    std::vector<prof::CodeSym> syms;
    for (const auto &[index, label] : prog_.code_labels)
        syms.push_back({index, label});
    return syms;
}

std::vector<prof::DataSym>
System::dataSyms() const
{
    std::vector<prof::DataSym> syms;
    for (const auto &sym : prog_.symbols)
        syms.push_back({sym.addr, sym.size, sym.name});
    return syms;
}

std::vector<const trace::TraceSink *>
System::allSinks() const
{
    std::vector<const trace::TraceSink *> sinks;
    sinks.reserve(shard_ctx_.size());
    for (const auto &sctx : shard_ctx_)
        sinks.push_back(&sctx->tracer);
    return sinks;
}

System::System(const SystemConfig &config, const isa::Program &prog)
    : config_(config), prog_(prog), ctx_(makeShardContexts())
{
    static const bool trace_initialised = [] {
        trace::initFromEnv();
        return true;
    }();
    (void)trace_initialised;

    flAssert(config_.num_cores >= 1, "need at least one core");
    flAssert(config_.num_cores <= mem::max_cores,
             "at most ", mem::max_cores, " cores supported");
    flAssert(config_.l1.block_size == config_.l2.block_size,
             "L1 and L2 block sizes must match");
    flAssert(isPowerOf2(config_.dir_banks) && config_.dir_banks <= 64,
             "dir_banks must be a power of two in [1, 64] (got ",
             config_.dir_banks, ")");
    flAssert(config_.l2.size % config_.dir_banks == 0,
             "L2 size must divide evenly across ", config_.dir_banks,
             " directory banks");

    shard_halted_.resize(shards_);
    mail_.resize(static_cast<std::size_t>(shards_) * shards_);

    // Per-shard sinks configured identically; host-parallel sweeps and
    // sharded systems alike record without synchronisation.
    for (auto &sctx : shard_ctx_)
        sctx->tracer.setMask(config_.trace_mask);

    // Pre-register the *global* component list -- in construction
    // order -- into every shard sink, so component ids are identical
    // across sinks and the per-shard record streams merge canonically
    // at dump time (see sim/blackbox.hh).
    {
        std::vector<std::string> comp_names;
        comp_names.emplace_back("network");
        for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
            comp_names.push_back("l1_" + std::to_string(i));
            comp_names.push_back("net.rx" + std::to_string(i));
        }
        for (std::uint32_t b = 0; b < config_.dir_banks; ++b) {
            comp_names.push_back(dirBankName(config_.dir_banks, b));
            comp_names.push_back(
                "net.rx" + std::to_string(config_.num_cores + b));
        }
        for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
            comp_names.push_back("core_" + std::to_string(i));
            comp_names.push_back("core_" + std::to_string(i) + ".sb");
        }
        if (config_.spec.mode != spec::SpecMode::Off) {
            for (std::uint32_t i = 0; i < config_.num_cores; ++i)
                comp_names.push_back("spec_" + std::to_string(i));
        }
        // Host tracks come last so guest component ids are unchanged
        // by enabling telemetry, and only exist when it is on: the
        // component list shapes every trace/blackbox dump, and a
        // telemetry-off dump must stay byte-identical across shard
        // counts.
        if (config_.host_telemetry) {
            telemetry_.configure(shards_);
            for (std::uint32_t s = 0; s < shards_; ++s)
                comp_names.push_back("host.shard" + std::to_string(s));
            comp_names.emplace_back("host.coord");
        }
        for (auto &sctx : shard_ctx_) {
            for (const std::string &name : comp_names)
                sctx->tracer.registerComponent(name);
        }
        if (config_.host_telemetry) {
            for (std::uint32_t s = 0; s < shards_; ++s) {
                host_comp_.push_back(ctx_.tracer.registerComponent(
                    "host.shard" + std::to_string(s)));
            }
            coord_comp_ = ctx_.tracer.registerComponent("host.coord");
            ctx_.tracer.setAuxNames(
                trace::EventKind::HostCoord,
                {"lookahead", "snapshot", "watchdog", "budget", "idle"});
        }
    }

    // Flight recorder: configured after the component list is known,
    // so the ring storage is sized in ONE allocation.  Registering a
    // component into a live ring grows it with a full reallocate-and-
    // copy, which is quadratic over the list and -- worse -- cycles
    // the heap through every intermediate size on each System
    // construction, fragmenting long-lived benchmark/sweep processes.
    // The components constructed below re-register idempotently and
    // never grow the ring.
    if (config_.blackbox_records > 0) {
        for (auto &sctx : shard_ctx_) {
            sctx->tracer.configureRing(config_.blackbox_records,
                                       trace::default_blackbox_flags);
        }
    }

    // The profilers must be configured before any component
    // construction below: each component caches ifEnabled() exactly
    // once, against its own shard's profiler.
    if (config_.profile) {
        for (auto &sctx : shard_ctx_) {
            sctx->profiler.configure(prog_.code.size(),
                                     config_.num_cores,
                                     config_.l1.block_size, codeSyms(),
                                     dataSyms());
        }
    }

    // Span sinks follow the same rule (components cache ifEnabled()
    // once).  Everything below -- the aux names, the "tailtrace" stat
    // group -- exists only when tracing is on, so a tracing-off run's
    // stats/trace documents are byte-identical to a build without the
    // feature.
    if (config_.tail_sample > 0) {
        for (auto &sctx : shard_ctx_)
            sctx->spans.configure(config_.tail_sample);
        std::vector<std::string> stage_names;
        for (std::size_t s = 0; s < reqtrace::num_stages; ++s) {
            stage_names.emplace_back(reqtrace::stageName(
                static_cast<reqtrace::Stage>(s)));
        }
        ctx_.tracer.setAuxNames(trace::EventKind::ReqStage,
                                std::move(stage_names));
        statistics::StatGroup &g = stats_.createGroup("tailtrace");
        tail_stat_spans_ = &g.addScalar("sampled_spans",
            "complete primary request spans sampled");
        tail_stat_waiters_ = &g.addScalar("waiter_spans",
            "coalesced-waiter spans sampled");
        tail_stat_incomplete_ = &g.addScalar("incomplete_spans",
            "sampled spans cut off at end of run");
        tail_stat_retries_ = &g.addScalar("fill_retries",
            "fill yanks across sampled spans");
        tail_stat_e2e_ = &g.addDistribution("e2e_latency",
            "end-to-end cycles of sampled spans (incl. waiters)");
        for (std::size_t s = 0; s < reqtrace::num_stages - 1; ++s) {
            tail_stat_stage_.push_back(&g.addDistribution(
                std::string("stage_") + reqtrace::stageName(
                    static_cast<reqtrace::Stage>(s)),
                "per-span cycles attributed to this stage"));
        }
    }

    isa::loadImage(prog_, backing_);

    // The topology layer needs the endpoint count for routing; the
    // crossbar ignores it but gets the true value anyway.
    config_.net.num_nodes = config_.num_cores + config_.dir_banks;
    network_ = std::make_unique<mem::Network>(ctx_, "network",
                                              config_.net);
    for (std::uint32_t i = 0; i < config_.num_cores; ++i)
        network_->bindNode(i, *shard_ctx_[shardOfCore(i)], shardOfCore(i));
    for (std::uint32_t b = 0; b < config_.dir_banks; ++b) {
        network_->bindNode(config_.num_cores + b,
                           *shard_ctx_[shardOfBank(b)], shardOfBank(b));
    }
    network_->setCrossShardPush(
        [this](std::uint32_t src, std::uint32_t dst,
               mem::Network::PendingMsg &&pm) {
            // Single-writer per (src, dst) cell: this runs on the
            // sending shard's thread, same as the mailbox push.
            if (telemetry_.enabled())
                telemetry_.countMessage(src, dst);
            mail_[src * shards_ + dst].push_back(std::move(pm));
        });

    const mem::DirectoryMap dirmap(config_.num_cores, config_.dir_banks,
                                   floorLog2(config_.l2.block_size));
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_.push_back(std::make_unique<mem::L1Cache>(
            *shard_ctx_[shardOfCore(i)], "l1_" + std::to_string(i),
            config_.l1, i, dirmap, *network_));
    }
    for (std::uint32_t b = 0; b < config_.dir_banks; ++b) {
        mem::Directory::Params bank_params = config_.l2;
        bank_params.size = config_.l2.size / config_.dir_banks;
        bank_params.banks = config_.dir_banks;
        bank_params.bank = b;
        dirs_.push_back(std::make_unique<mem::Directory>(
            *shard_ctx_[shardOfBank(b)], dirBankName(config_.dir_banks, b),
            bank_params, config_.num_cores + b, config_.num_cores,
            *network_, backing_));
    }

    cpu::Core::Params core_params;
    core_params.model = config_.model;
    core_params.sb_size = config_.sb_size;
    core_params.sb_max_inflight = config_.sb_max_inflight;
    core_params.sb_prefetch_depth = config_.sb_prefetch_depth;
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const std::uint32_t s = shardOfCore(i);
        cores_.push_back(std::make_unique<cpu::Core>(
            *shard_ctx_[s], "core_" + std::to_string(i), core_params, i,
            prog_, *l1s_[i], config_.num_cores));
        cores_.back()->setHaltCallback(
            [this, s] { ++shard_halted_[s].halted; });
    }

    if (config_.spec.mode != spec::SpecMode::Off) {
        for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
            specs_.push_back(std::make_unique<spec::SpecController>(
                *shard_ctx_[shardOfCore(i)], "spec_" + std::to_string(i),
                config_.spec, *cores_[i], *l1s_[i]));
        }
    }

    if (config_.watchdog_interval > 0) {
        sim::Watchdog::Params wp;
        wp.interval = config_.watchdog_interval;
        wp.storm_threshold = config_.watchdog_storm;
        watchdog_ = std::make_unique<sim::Watchdog>(wp, [this] {
            sim::Watchdog::Progress p;
            for (const auto &core : cores_)
                p.instret += core->instret();
            for (const auto &s : specs_)
                p.rollbacks += s->rollbacks();
            p.all_halted = totalHalted() == config_.num_cores;
            return p;
        });
    }

    // Components registered aux-name tables (stall reasons, rollback
    // causes, message types) into their own shard's sink; the meta sink
    // renders every merged dump, so it adopts the rest.
    for (std::uint32_t s = 1; s < shards_; ++s)
        ctx_.tracer.adoptAuxNames(shard_ctx_[s]->tracer);
}

bool
System::run()
{
    for (auto &core : cores_)
        core->reset();

    drv_ = DriverState{};
    drv_.active = true;
    drv_.now = ctx_.curTick();
    drv_.next_snapshot = config_.stats_interval > 0
                             ? drv_.now + config_.stats_interval
                             : max_tick;
    if (watchdog_) {
        watchdog_->prime(drv_.now);
        drv_.next_wd = drv_.now + watchdog_->interval();
    }
    drv_.boundary = nextBoundaryAfter(
        drv_.now, false, totalHalted() == config_.num_cores);

    if (telemetry_.enabled()) {
        // Event counting works on pop deltas per quantum; re-anchor in
        // case this System runs more than once.
        for (std::uint32_t s = 0; s < shards_; ++s)
            telemetry_.slot(s).last_pops = shardPops(s);
    }

    runShards();
    drv_.active = false;

    // Fold the network's per-node counters into its stat group; every
    // mode does this here, so the rendered stats are mode-independent.
    network_->finalizeStats();
    if (config_.tail_sample > 0)
        finalizeTailTrace();
    return !hung_ && totalHalted() == config_.num_cores;
}

void
System::runShards()
{
    // If a simulator invariant trips mid-run, dump this system's
    // evidence before aborting.  The hook is thread-local (sweep
    // workers guard their own systems), so each shard thread installs
    // its own copy.
    const auto panic_dump = [this] {
        std::ostringstream os;
        os << "=== incident dump (panic) ===\n";
        writeArchState(os);
        trace::writeBlackboxTailMerged(os, ctx_.tracer, allSinks());
        reportBlock(os.str());
    };

    if (shards_ == 1) {
        // The reference mode: the same quantum driver, inline on this
        // thread, with no barriers and (absent snapshots/watchdog) a
        // single quantum spanning the whole run.
        auto prev = setPanicHook(panic_dump);
        const bool tm = telemetry_.enabled();
        const bool rec = tm && ctx_.tracer.wants(trace::Flag::Host);
        while (!drv_.done) {
            // Wall-clock phases are sampled (see telemetry.hh); the
            // sampling decision is a function of the coordinator step
            // count, which coordinatorStep() evaluates identically.
            const bool sample =
                tm && (rec || ShardTelemetry::sampleQuantum(
                                  telemetry_.coord().steps));
            if (sample) {
                const Tick qstart = drv_.now;
                const Tick qend = drv_.boundary;
                const std::uint64_t t0 = ShardTelemetry::nowNs();
                ctx_.eventq.run(drv_.boundary - 1);
                const std::uint64_t busy = ShardTelemetry::nowNs() - t0;
                telemetry_.slot(0).q_busy_ns = busy;
                if (rec && busy) {
                    // An open-ended quantum (boundary = max_tick) ends
                    // where the events ran out.
                    const Tick qe =
                        qend == max_tick ? ctx_.curTick() + 1 : qend;
                    ctx_.tracer.record(host_comp_[0],
                                       trace::EventKind::HostPhase,
                                       qstart, qe, busy, 0);
                }
            } else {
                ctx_.eventq.run(drv_.boundary - 1);
            }
            coordinatorStep();
        }
        setPanicHook(std::move(prev));
        return;
    }

    // One host thread per shard, lock-stepped by a barrier whose
    // completion step *is* the coordinator: it runs while every shard
    // thread is parked, so it may read and write any shard's state.
    // Each quantum is two phases -- run-to-boundary, then mailbox
    // drain -- and the barrier provides all ordering, so the shared
    // driver state needs no atomics.
    struct Completion
    {
        System *sys;
        void operator()() noexcept { sys->onBarrier(); }
    };
    std::barrier<Completion> sync(static_cast<std::ptrdiff_t>(shards_),
                                  Completion{this});

    std::vector<std::thread> threads;
    threads.reserve(shards_);
    for (std::uint32_t s = 0; s < shards_; ++s) {
        threads.emplace_back([this, s, &sync, &panic_dump] {
            setPanicHook(panic_dump);
            sim::SimContext &sctx = *shard_ctx_[s];
            sim::EventQueue &eq = sctx.eventq;
            const bool tm = telemetry_.enabled();
            const bool rec = tm && sctx.tracer.wants(trace::Flag::Host);
            while (true) {
                // Wall-clock sampling decision (see telemetry.hh): a
                // pure function of the coordinator step count, which
                // is only written inside barrier completions while
                // every shard thread is parked -- so all shards read
                // the same value here and agree with the coordinator.
                const bool sample =
                    tm && (rec || ShardTelemetry::sampleQuantum(
                                      telemetry_.coord().steps));
                if (!sample) {
                    eq.run(drv_.boundary - 1);
                    sync.arrive_and_wait(); // completion: coordinatorStep
                    if (drv_.done)
                        break;
                    drainMail(s);
                    sync.arrive_and_wait(); // drains done before next run
                    continue;
                }
                // Instrumented quantum.  The boundary/now snapshot is
                // taken while every thread is between barriers, where
                // the coordinator never writes; the scratch q_busy_ns
                // is folded by the coordinator inside the completion
                // step, and the totals below are only ever touched by
                // this thread outside it.
                ShardTelemetry::ShardSlot &sl = telemetry_.slot(s);
                const Tick qstart = drv_.now;
                const Tick qend = drv_.boundary;
                const std::uint64_t t0 = ShardTelemetry::nowNs();
                eq.run(drv_.boundary - 1);
                const std::uint64_t t1 = ShardTelemetry::nowNs();
                sl.q_busy_ns = t1 - t0;
                const Tick qe =
                    qend == max_tick ? sctx.curTick() + 1 : qend;
                if (rec && t1 != t0) {
                    sctx.tracer.record(host_comp_[s],
                                       trace::EventKind::HostPhase,
                                       qstart, qe, t1 - t0, 0);
                }
                sync.arrive_and_wait(); // completion: coordinatorStep()
                const std::uint64_t t2 = ShardTelemetry::nowNs();
                sl.barrier_ns += t2 - t1;
                if (rec && t2 != t1) {
                    sctx.tracer.record(host_comp_[s],
                                       trace::EventKind::HostPhase,
                                       qstart, qe, t2 - t1, 1);
                }
                if (drv_.done)
                    break;
                drainMail(s);
                const std::uint64_t t3 = ShardTelemetry::nowNs();
                sl.drain_ns += t3 - t2;
                if (rec && t3 != t2) {
                    sctx.tracer.record(host_comp_[s],
                                       trace::EventKind::HostPhase,
                                       qstart, qe, t3 - t2, 2);
                }
                sync.arrive_and_wait(); // drains done before next run
                sl.barrier_ns += ShardTelemetry::nowNs() - t3;
            }
        });
    }
    for (auto &t : threads)
        t.join();
}

void
System::onBarrier() noexcept
{
    // Completions alternate run-phase / drain-phase; the coordinator
    // acts only at the end of a run phase (every thread parked at the
    // same quantum boundary).
    drv_.phase_toggle = !drv_.phase_toggle;
    if (drv_.phase_toggle)
        coordinatorStep();
}

std::uint64_t
System::shardPops(std::uint32_t s) const
{
    const sim::EventQueue &eq = shard_ctx_[s]->eventq;
    return eq.nearPops() + eq.farPops();
}

void
System::foldQuantumTelemetry(bool sampled)
{
    // Runs in the barrier completion (threads parked) or inline: free
    // to read every shard's queue counters and scratch fields.  The
    // deterministic counters fold every quantum; the wall-clock view
    // (busy sums, imbalance, laggard) only on sampled quanta, where
    // the shard threads actually took timestamps.
    std::uint64_t max_busy = 0;
    std::uint32_t laggard = 0;
    if (sampled) {
        for (std::uint32_t s = 0; s < shards_; ++s) {
            const std::uint64_t busy = telemetry_.slot(s).q_busy_ns;
            if (busy > max_busy) {
                max_busy = busy;
                laggard = s;
            }
        }
    }
    for (std::uint32_t s = 0; s < shards_; ++s) {
        ShardTelemetry::ShardSlot &sl = telemetry_.slot(s);
        const std::uint64_t pops = shardPops(s);
        const std::uint64_t events = pops - sl.last_pops;
        sl.last_pops = pops;
        sl.events += events;
        ++sl.quanta;
        if (events == 0)
            ++sl.idle_quanta;
        if (sampled) {
            ++sl.sampled_quanta;
            sl.busy_ns += sl.q_busy_ns;
            sl.imbalance_ns += max_busy - sl.q_busy_ns;
            sl.q_busy_ns = 0;
        }
    }
    if (sampled && shards_ >= 2 && max_busy > 0)
        ++telemetry_.slot(laggard).laggard_quanta;
}

void
System::coordinatorStep()
{
    if (!telemetry_.enabled()) {
        coordinatorStepImpl(nullptr);
        return;
    }
    const bool rec = ctx_.tracer.wants(trace::Flag::Host);
    ShardTelemetry::Coordinator &co = telemetry_.coord();
    // Same sampling predicate the shard threads evaluated at the top
    // of this quantum: co.steps has not been incremented yet.
    const bool sampled = rec || ShardTelemetry::sampleQuantum(co.steps);
    const std::uint64_t t0 = sampled ? ShardTelemetry::nowNs() : 0;
    foldQuantumTelemetry(sampled);
    BoundaryCause cause = BoundaryCause::NumCauses;
    coordinatorStepImpl(&cause);
    ++co.steps;
    if (cause != BoundaryCause::NumCauses)
        ++co.causes[static_cast<std::size_t>(cause)];
    if (sampled) {
        ++co.sampled_steps;
        const std::uint64_t ns = ShardTelemetry::nowNs() - t0;
        co.ns += ns;
        if (rec) {
            ctx_.tracer.record(coord_comp_, trace::EventKind::HostCoord,
                               drv_.now, 0, ns,
                               static_cast<std::uint32_t>(cause));
        }
    }
}

void
System::coordinatorStepImpl(BoundaryCause *cause)
{
    const Tick b = drv_.boundary;
    drv_.now = b;

    if (b == drv_.next_snapshot) {
        takeSnapshot(b);
        drv_.next_snapshot = totalHalted() < config_.num_cores
                                 ? b + config_.stats_interval
                                 : max_tick;
    }

    if (b == drv_.next_wd) {
        if (totalHalted() == config_.num_cores) {
            drv_.next_wd = max_tick; // clean completion: stand down
        } else if (watchdog_->checkAt(b)) {
            onWatchdogFire(watchdog_->report());
            drv_.done = true;
            return;
        } else {
            drv_.next_wd = b + watchdog_->interval();
        }
    }

    const bool all_halted = totalHalted() == config_.num_cores;
    if (b > config_.max_cycles && !all_halted) {
        drv_.done = true; // cycle budget exhausted
        return;
    }

    const bool idle = allQueuesIdle();
    if (idle) {
        // Nothing can happen until the coordinator itself acts.  A
        // wedged (not-halted) system stays alive for the watchdog or
        // the snapshot series; otherwise take the one trailing
        // snapshot the interval still owes and finish.
        const bool keep_alive =
            !all_halted &&
            (watchdog_ != nullptr || drv_.next_snapshot != max_tick);
        if (!keep_alive) {
            if (drv_.next_snapshot != max_tick)
                takeSnapshot(drv_.next_snapshot);
            drv_.done = true;
            return;
        }
    }

    drv_.boundary = nextBoundaryAfter(b, idle, all_halted, cause);
}

Tick
System::nextBoundaryAfter(Tick b, bool idle, bool all_halted,
                          BoundaryCause *cause) const
{
    // The quantum term only applies when shards actually have work to
    // exchange; an idle system jumps straight to the next coordinator
    // action.  Every other term is a coordinator deadline.
    const Tick quantum =
        (shards_ >= 2 && !idle) ? b + lookahead() : max_tick;
    Tick nb = quantum;
    nb = std::min(nb, drv_.next_snapshot);
    nb = std::min(nb, drv_.next_wd);
    if (!all_halted && config_.max_cycles < max_tick)
        nb = std::min(nb, config_.max_cycles + 1);
    if (cause) {
        // Fixed attribution priority on ties -- a deterministic
        // function of deterministic inputs, so the cause counters are
        // byte-stable run to run.
        if (nb == drv_.next_snapshot)
            *cause = BoundaryCause::Snapshot;
        else if (nb == drv_.next_wd)
            *cause = BoundaryCause::Watchdog;
        else if (!all_halted && config_.max_cycles < max_tick &&
                 nb == config_.max_cycles + 1)
            *cause = BoundaryCause::Budget;
        else if (nb == quantum && quantum != max_tick)
            *cause = BoundaryCause::Lookahead;
        else
            *cause = BoundaryCause::Idle;
    }
    return nb;
}

void
System::drainMail(std::uint32_t shard)
{
    for (std::uint32_t src = 0; src < shards_; ++src) {
        auto &box = mail_[src * shards_ + shard];
        for (auto &pm : box)
            network_->enqueueArrival(std::move(pm));
        box.clear();
    }
}

bool
System::allQueuesIdle() const
{
    for (const auto &sctx : shard_ctx_) {
        if (!sctx->eventq.empty())
            return false;
    }
    for (const auto &box : mail_) {
        if (!box.empty())
            return false;
    }
    return true;
}

void
System::takeSnapshot(Tick tick)
{
    std::ostringstream os;
    statistics::printGroupsJson(os, stats_);
    snapshots_.push_back(StatSnapshot{tick, os.str()});
}

std::string
System::provenanceJson() const
{
    std::string p = provenance::jsonObject();
    std::ostringstream extra;
    extra << ", \"sim_mode\": {\"parallel_sim\": "
          << (shards_ >= 2 ? 1 : 0) << ", \"shards\": " << shards_
          << ", \"dir_banks\": " << config_.dir_banks
          << ", \"topology\": \""
          << mem::topologyName(config_.net.topology) << "\"}";
    const auto pos = p.rfind('}');
    if (pos != std::string::npos)
        p.insert(pos, extra.str());
    return p;
}

void
System::writeStatsJson(std::ostream &os) const
{
    os << "{\n  \"schema_version\": "
       << statistics::stats_schema_version
       << ",\n  \"provenance\": " << provenanceJson()
       << ",\n  \"groups\": ";
    statistics::printGroupsJson(os, stats_);
    os << ",\n  \"schema\": ";
    statistics::printSchemaJson(os, stats_);
    if (telemetry_.enabled()) {
        os << ",\n  \"host\": ";
        telemetry_.writeHostJson(os, lookahead(), "  ");
    }
    os << ",\n  \"snapshots\": [";
    bool first = true;
    for (const auto &snap : snapshots_) {
        os << (first ? "" : ",") << "\n    {\"tick\": " << snap.tick
           << ", \"groups\": " << snap.groups_json << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

void
System::writeShardReport(std::ostream &os) const
{
    if (!telemetry_.enabled()) {
        os << "shard report: host telemetry was off "
              "(--shard-report / --host-telemetry enables it)\n";
        return;
    }
    const ShardTelemetry &tm = telemetry_;
    os << "=== shard report (host-waste telemetry) ===\n";
    os << "mode: shards=" << shards_ << " lookahead=" << lookahead()
       << " cores=" << config_.num_cores << " dir_banks="
       << config_.dir_banks << " topology="
       << mem::topologyName(config_.net.topology) << "\n";
    os << "wallclock sampling: "
       << fmt((tm.slot(0).quanta
                   ? static_cast<double>(tm.slot(0).sampled_quanta)
                         / static_cast<double>(tm.slot(0).quanta)
                   : 0.0) * 100.0)
       << "% of quanta timed; ms columns are scaled estimates\n\n";

    Table shard_table({"shard", "events", "quanta", "idle_q",
                       "busy_ms", "barrier_ms", "drain_ms", "util%",
                       "laggard_q"});
    for (std::uint32_t s = 0; s < shards_; ++s) {
        const ShardTelemetry::ShardSlot &sl = tm.slot(s);
        const std::uint64_t total =
            sl.busy_ns + sl.barrier_ns + sl.drain_ns;
        const double util =
            total ? 100.0 * static_cast<double>(sl.busy_ns)
                        / static_cast<double>(total)
                  : 0.0;
        // Scale the sampled sums up to whole-run estimates; ratios
        // (util%, imbalance) are unbiased without scaling.
        const double scale =
            sl.sampled_quanta ? static_cast<double>(sl.quanta)
                                    / static_cast<double>(
                                        sl.sampled_quanta)
                              : 0.0;
        shard_table.addRow(
            {"shard" + std::to_string(s), std::to_string(sl.events),
             std::to_string(sl.quanta), std::to_string(sl.idle_quanta),
             fmt(static_cast<double>(sl.busy_ns) * scale / 1e6),
             fmt(static_cast<double>(sl.barrier_ns) * scale / 1e6),
             fmt(static_cast<double>(sl.drain_ns) * scale / 1e6),
             fmt(util), std::to_string(sl.laggard_quanta)});
    }
    shard_table.print(os);

    os << "\nutilization: " << fmt(100.0 * tm.utilization())
       << "% (busy / (busy + barrier + drain), all shards)\n";
    os << "imbalance factor (max/mean busy): "
       << fmt(tm.imbalanceFactor()) << "\n";
    {
        // Hub diagnosis: with a monolithic directory every miss funnels
        // into shard 0; distributed banks should pull this toward the
        // uniform share (1/shards).
        std::uint64_t cross_total = 0, inbound0 = 0;
        for (std::uint32_t src = 0; src < shards_; ++src) {
            for (std::uint32_t dst = 0; dst < shards_; ++dst) {
                const std::uint64_t n = tm.messages(src, dst);
                cross_total += n;
                if (dst == 0)
                    inbound0 += n;
            }
        }
        os << "coordinator-inbound share: "
           << fmt(cross_total ? 100.0 * static_cast<double>(inbound0)
                                    / static_cast<double>(cross_total)
                              : 0.0)
           << "% of cross-shard messages target shard 0\n";
    }
    const ShardTelemetry::Coordinator &co = tm.coord();
    const double co_scale =
        co.sampled_steps ? static_cast<double>(co.steps)
                               / static_cast<double>(co.sampled_steps)
                         : 0.0;
    os << "coordinator: steps=" << co.steps << " total_ms="
       << fmt(static_cast<double>(co.ns) * co_scale / 1e6)
       << " (est)\n";
    os << "boundary causes:";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(BoundaryCause::NumCauses); ++c) {
        os << " " << boundaryCauseName(static_cast<BoundaryCause>(c))
           << "=" << co.causes[c];
    }
    os << "\n";

    // Top cross-shard traffic pairs, heaviest first; ties broken by
    // (src, dst) so the table is deterministic.
    struct Pair
    {
        std::uint32_t src, dst;
        std::uint64_t count;
    };
    std::vector<Pair> pairs;
    for (std::uint32_t src = 0; src < shards_; ++src) {
        for (std::uint32_t dst = 0; dst < shards_; ++dst) {
            if (const std::uint64_t n = tm.messages(src, dst))
                pairs.push_back({src, dst, n});
        }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair &a,
                                             const Pair &b) {
        if (a.count != b.count)
            return a.count > b.count;
        if (a.src != b.src)
            return a.src < b.src;
        return a.dst < b.dst;
    });
    if (!pairs.empty()) {
        os << "\ntop cross-shard traffic (src -> dst):\n";
        Table traffic({"src", "dst", "msgs"});
        const std::size_t top = std::min<std::size_t>(pairs.size(), 8);
        for (std::size_t i = 0; i < top; ++i) {
            traffic.addRow({"shard" + std::to_string(pairs[i].src),
                            "shard" + std::to_string(pairs[i].dst),
                            std::to_string(pairs[i].count)});
        }
        traffic.print(os);
    }
    os << "=== end shard report ===\n";
}

void
System::finalizeTailTrace()
{
    if (tail_finalized_)
        return;
    tail_finalized_ = true;

    // Canonical merge: concatenate the per-shard event vectors in
    // shard order; assembleSpans re-sorts by (req, tick) into an order
    // that is a pure function of the simulated timing.
    std::vector<reqtrace::SpanEvent> events;
    for (const auto &sctx : shard_ctx_) {
        const auto &ev = sctx->spans.events();
        events.insert(events.end(), ev.begin(), ev.end());
    }
    tail_spans_ = reqtrace::assembleSpans(std::move(events),
                                          config_.tail_sample);
    tail_attr_ = reqtrace::attributeStages(tail_spans_);

    // Fill the "tailtrace" stat group on this (the main) thread, in
    // canonical span order: the registry is shared across shards, so
    // the rendered JSON is shard-count independent.
    std::uint64_t primaries = 0, waiters = 0, retries = 0;
    for (const reqtrace::Span &s : tail_spans_.spans) {
        ++(s.waiter ? waiters : primaries);
        retries += s.retries;
        tail_stat_e2e_->sample(static_cast<double>(s.latency()));
        std::array<Tick, reqtrace::num_stages> per{};
        for (const reqtrace::SpanStage &st : s.stages)
            per[static_cast<std::size_t>(st.stage)] += st.cycles;
        for (std::size_t b = 0; b < tail_stat_stage_.size(); ++b) {
            if (per[b])
                tail_stat_stage_[b]->sample(
                    static_cast<double>(per[b]));
        }
    }
    *tail_stat_spans_ = primaries;
    *tail_stat_waiters_ = waiters;
    *tail_stat_incomplete_ = tail_spans_.incomplete;
    *tail_stat_retries_ = retries;
}

void
System::writeTailReport(std::ostream &os) const
{
    if (config_.tail_sample == 0) {
        os << "tail report: span tracing was off "
              "(--tail-sample / --tail-report enables it)\n";
        return;
    }
    const reqtrace::TailAttribution &at = tail_attr_;
    os << "=== tail report (per-request span attribution) ===\n";
    os << "sampling: 1 in " << config_.tail_sample
       << " misses; spans=" << at.spans << " (incl. waiter spans), "
       << "incomplete=" << tail_spans_.incomplete << "\n";
    os << "e2e latency (cycles): p50=" << at.e2e_p50 << " p95="
       << at.e2e_p95 << " p99=" << at.e2e_p99 << " p99.9="
       << at.e2e_p999 << "\n";

    // The per-stage sums must tile the end-to-end latencies exactly:
    // spans record boundary events only, so this reconciliation is by
    // construction -- print it so regressions are visible.
    std::uint64_t stage_cycles = 0;
    for (const reqtrace::StageRow &row : at.rows)
        stage_cycles += row.cycles;
    os << "stage cycles " << stage_cycles << " / e2e cycles "
       << at.e2e_cycles
       << (stage_cycles == at.e2e_cycles ? " (reconciled exactly)"
                                         : " (MISMATCH)")
       << "\n\n";

    Table t({"stage", "spans", "cycles", "share%", "p50", "p95", "p99",
             "p99.9", "tail_own"});
    for (const reqtrace::StageRow &row : at.rows) {
        t.addRow({reqtrace::stageName(row.stage),
                  std::to_string(row.spans),
                  std::to_string(row.cycles),
                  fmt(at.e2e_cycles
                          ? 100.0 * static_cast<double>(row.cycles)
                                / static_cast<double>(at.e2e_cycles)
                          : 0.0),
                  std::to_string(row.p50), std::to_string(row.p95),
                  std::to_string(row.p99), std::to_string(row.p999),
                  std::to_string(row.tail_owned)});
    }
    t.print(os);

    os << "\ntail ownership (" << at.tail_spans
       << " spans above p99=" << at.e2e_p99 << "):";
    for (const reqtrace::StageRow *row : at.tailRanking()) {
        if (row->tail_owned == 0)
            continue;
        os << " " << reqtrace::stageName(row->stage) << "="
           << row->tail_owned;
    }
    os << "\n=== end tail report ===\n";
}

void
System::writeOutliers(std::ostream &os) const
{
    const std::vector<const reqtrace::Span *> top =
        reqtrace::topK(tail_spans_, config_.tail_outliers);
    const std::vector<std::uint64_t> lmsgs =
        network_->foldedLinkMsgs();
    const mem::Topology topo = config_.net.topology;
    const std::uint32_t nn = config_.num_cores + config_.dir_banks;

    os << "{\n  \"schema_version\": 1,\n  \"provenance\": "
       << provenanceJson() << ",\n  \"sampling_period\": "
       << config_.tail_sample << ",\n  \"spans\": "
       << tail_spans_.spans.size() << ",\n  \"outliers\": [";
    bool first = true;
    for (const reqtrace::Span *sp : top) {
        const std::uint32_t bank = bankOf(sp->block);
        const auto dir_node =
            static_cast<mem::NodeId>(config_.num_cores + bank);
        const auto core_node = static_cast<mem::NodeId>(sp->core());

        // The hottest link (whole-run traffic) on the request + reply
        // route -- routes are pure functions of (src, dst), so this
        // needs no per-hop events.
        std::uint64_t hot_msgs = 0;
        std::int64_t hot_link = -1;
        if (!lmsgs.empty()) {
            const auto consider = [&](std::uint32_t l) {
                if (l < lmsgs.size() &&
                    (hot_link < 0 || lmsgs[l] > hot_msgs)) {
                    hot_msgs = lmsgs[l];
                    hot_link = l;
                }
            };
            mem::forEachRouteLink(topo, nn, core_node, dir_node,
                                  consider);
            mem::forEachRouteLink(topo, nn, dir_node, core_node,
                                  consider);
        }

        os << (first ? "" : ",") << "\n    {\"req_id\": " << sp->req_id
           << ", \"core\": " << sp->core() << ", \"seq\": " << sp->seq()
           << ", \"block\": \"0x" << std::hex << sp->block << std::dec
           << "\", \"pc\": " << sp->pc << ", \"pc_sym\": \""
           << symbolizePc(sp->pc) << "\", \"issue\": " << sp->issue
           << ", \"done\": " << sp->done << ", \"latency\": "
           << sp->latency() << ", \"waiters\": " << sp->waiters
           << ", \"retries\": " << sp->retries << ", \"dir_bank\": \""
           << dirBankName(config_.dir_banks, bank) << "\"";
        if (hot_link >= 0) {
            os << ", \"hot_link\": \""
               << mem::linkName(topo,
                                static_cast<std::uint32_t>(hot_link))
               << "\", \"hot_link_msgs\": " << hot_msgs;
        }
        os << ", \"stages\": [";
        bool sfirst = true;
        for (const reqtrace::SpanStage &st : sp->stages) {
            os << (sfirst ? "" : ", ") << "{\"stage\": \""
               << reqtrace::stageName(st.stage) << "\", \"at\": "
               << st.at << ", \"cycles\": " << st.cycles
               << ", \"aux\": " << st.aux;
            if (st.flags & reqtrace::span_flag_retry)
                os << ", \"retry\": true";
            os << "}";
            sfirst = false;
        }
        os << "]}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

Tick
System::runtimeCycles() const
{
    Tick last = 0;
    for (const auto &core : cores_) {
        last = std::max(last,
                        core->statGroup().scalarCount("halt_tick"));
    }
    return last;
}

std::uint64_t
System::debugRead(Addr addr, unsigned size) const
{
    for (const auto &l1 : l1s_) {
        std::uint64_t v = 0;
        if (l1->debugRead(addr, size, v))
            return v;
    }
    return dirs_[bankOf(addr)]->debugRead(addr, size);
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instret();
    return total;
}

std::uint64_t
System::totalCommits() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->commits();
    return total;
}

std::uint64_t
System::totalRollbacks() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->rollbacks();
    return total;
}

bool
System::quiesced() const
{
    if (!allQueuesIdle())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->quiesced())
            return false;
    }
    for (const auto &d : dirs_) {
        if (!d->quiesced())
            return false;
    }
    return true;
}

void
System::exportTrace(std::ostream &os) const
{
    // Canonical merge, shard-count independent: bucket records per
    // component (each component records into exactly one shard sink),
    // concatenate in global component-id order, stable-sort by tick --
    // the same rule the flight recorder uses (sim/blackbox.hh).
    const std::size_t ncomps = ctx_.tracer.components().size();
    std::vector<std::vector<trace::TraceRecord>> by_comp(ncomps);
    std::uint64_t dropped = 0;
    for (const auto &sctx : shard_ctx_) {
        sctx->tracer.forEach([&](const trace::TraceRecord &r) {
            by_comp[r.comp].push_back(r);
        });
        dropped += sctx->tracer.dropped();
    }
    std::vector<trace::TraceRecord> records;
    for (auto &bucket : by_comp) {
        records.insert(records.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    // Synthesize ReqStage records from the assembled spans -- at
    // export time only, so a tracing-off dump carries no trace of the
    // feature and live recording pays nothing for it.  The spans are
    // already canonical, so the merged document stays shard-count
    // independent.
    if (config_.tail_sample > 0) {
        for (const reqtrace::Span &sp : tail_spans_.spans) {
            for (const reqtrace::SpanStage &st : sp.stages) {
                trace::TraceRecord r{};
                r.tick = st.at;
                r.a0 = sp.req_id;
                r.a1 = st.cycles;
                r.comp = st.node;
                r.kind = static_cast<std::uint16_t>(
                    trace::EventKind::ReqStage);
                r.aux = static_cast<std::uint32_t>(st.stage);
                records.push_back(r);
            }
        }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const trace::TraceRecord &a,
                        const trace::TraceRecord &b) {
                         return a.tick < b.tick;
                     });
    ctx_.tracer.exportChromeJsonFor(os, records, dropped,
                                    provenanceJson());
}

void
System::writeBlackbox(std::ostream &os) const
{
    trace::writeBlackboxJsonMerged(os, ctx_.tracer, allSinks(),
                                   provenanceJson());
}

void
System::writeBlackboxTail(std::ostream &os,
                          std::size_t per_component) const
{
    trace::writeBlackboxTailMerged(os, ctx_.tracer, allSinks(),
                                   per_component);
}

prof::Profile
System::profile(const std::string &scope) const
{
    if (shards_ == 1 || !config_.profile)
        return ctx_.profiler.snapshot(scope);
    // Fold the per-shard profilers (integer counters throughout, so
    // the fold is exact) into a scratch profiler, then render: the
    // merged state equals what the single-shard reference accumulates.
    prof::WasteProfiler merged;
    merged.configure(prog_.code.size(), config_.num_cores,
                     config_.l1.block_size, codeSyms(), dataSyms());
    for (const auto &sctx : shard_ctx_)
        merged.absorb(sctx->profiler);
    return merged.snapshot(scope);
}

std::string
System::symbolizePc(std::uint64_t pc) const
{
    auto it = prog_.code_labels.upper_bound(pc);
    if (it == prog_.code_labels.begin())
        return "";
    --it;
    std::ostringstream os;
    os << it->second;
    if (pc > it->first)
        os << "+" << (pc - it->first);
    return os.str();
}

void
System::writeArchState(std::ostream &os) const
{
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const cpu::Core &core = *cores_[i];
        os << "  core_" << i << ": pc=" << core.pc();
        if (const std::string sym = symbolizePc(core.pc()); !sym.empty())
            os << " (" << sym << ")";
        os << " instret=" << core.instret() << " model="
           << cpu::consistencyModelName(core.model());
        if (core.halted()) {
            os << " halted";
        } else if (core.idle()) {
            os << " asleep=" << cpu::stallReasonName(core.sleepReason())
               << " since=" << core.sleepBegin();
            if (core.hasPendingAccess())
                os << " pending=0x" << std::hex << core.pendingAddr()
                   << std::dec;
        } else {
            os << " running";
        }
        const auto &sb = core.storeBuffer();
        os << " sb=" << sb.occupancy() << "/" << sb.capacity();
        if (!specs_.empty()) {
            const auto &spec = *specs_[i];
            if (spec.inSpec()) {
                os << " spec{epoch=" << spec.epoch() << " since="
                   << spec.epochStartTick() << " watermark="
                   << spec.watermark() << "}";
            }
            if (spec.cooldown() > 0)
                os << " cooldown=" << spec.cooldown();
            if (spec.consecutiveRollbacks() > 0)
                os << " consec_rollbacks="
                   << spec.consecutiveRollbacks();
        }
        os << "\n";
    }
}

void
System::buildWaitGraph(sim::WaitGraph &g) const
{
    using sim::WaitNode;
    using Kind = sim::WaitNode::Kind;

    const std::uint32_t banks = config_.dir_banks;

    // Cores: what is each non-running core waiting for?
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const cpu::Core &core = *cores_[i];
        if (core.halted() || !core.idle())
            continue;
        const cpu::StallReason why = core.sleepReason();
        if (core.hasPendingAccess()) {
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::Mshr, i,
                               l1s_[i]->blockAlign(core.pendingAddr())},
                      cpu::stallReasonName(why));
        } else if (why == cpu::StallReason::SpecLimit) {
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::SpecEpoch, i, 0},
                      cpu::stallReasonName(why));
        } else {
            // All remaining sleep reasons wait on store-buffer state
            // (drain, space, or overlap clearing).
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::StoreBuffer, i, 0},
                      cpu::stallReasonName(why));
        }
    }

    // Store buffers: issued drains wait on the L1 miss machinery.
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const auto &sb = cores_[i]->storeBuffer();
        for (const auto &e : sb.entries()) {
            if (!e.issued)
                continue;
            g.addEdge(WaitNode{Kind::StoreBuffer, i, 0},
                      WaitNode{Kind::Mshr, i,
                               l1s_[i]->blockAlign(e.addr)},
                      "drain store issued");
        }
        if (sb.retryPending()) {
            g.addEdge(WaitNode{Kind::StoreBuffer, i, 0},
                      WaitNode{Kind::Mshr, i, 0},
                      "drain retry parked (MSHR backpressure)");
        }
    }

    // Speculation: an open epoch commits only after the store buffer
    // drains to the watermark.
    for (std::uint32_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i]->inSpec()) {
            std::ostringstream label;
            label << "commit waits for drain to watermark "
                  << specs_[i]->watermark();
            g.addEdge(WaitNode{Kind::SpecEpoch, i, 0},
                      WaitNode{Kind::StoreBuffer, i, 0}, label.str());
        }
    }

    // L1 MSHRs: outstanding misses wait on directory transactions;
    // overflow-parked fills wait on the local epoch ending.
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_[i]->forEachMshr([&](const mem::L1Cache::Mshr &m) {
            g.addEdge(WaitNode{Kind::Mshr, i, m.block_addr},
                      WaitNode{Kind::DirTxn,
                               dirWaitId(banks, bankOf(m.block_addr)),
                               m.block_addr},
                      m.want_m ? "GetM outstanding"
                               : "GetS outstanding");
            if (m.fill_blocked) {
                g.addEdge(WaitNode{Kind::Mshr, i, m.block_addr},
                          WaitNode{Kind::SpecEpoch, i, 0},
                          "fill parked on speculative overflow");
            }
        });
    }

    // Directory transactions: what each active transaction awaits.
    // Bank-major order; each bank's forEachTxn is block-address sorted,
    // so dossiers stay deterministic at every bank count.
    for (std::uint32_t b = 0; b < banks; ++b) {
    const mem::Directory &bank_dir = *dirs_[b];
    const std::uint32_t wid = dirWaitId(banks, b);
    bank_dir.forEachTxn([&](const mem::Directory::TxnView &t) {
        const WaitNode txn{Kind::DirTxn, wid, t.block};
        const std::string phase = t.phase;
        if (phase == "dram") {
            g.addEdge(txn, WaitNode{Kind::Dram, wid, 0},
                      "awaiting DRAM fill");
        } else if (phase == "fwd") {
            const mem::L2Block *blk = bank_dir.findBlock(t.block);
            if (blk && blk->hasOwner()) {
                std::ostringstream label;
                label << "awaiting Fwd*Ack from owner (serving "
                      << mem::msgTypeName(t.req_type) << " from node "
                      << t.requester << ")";
                g.addEdge(txn,
                          WaitNode{Kind::Core,
                                   static_cast<std::uint32_t>(
                                       blk->owner),
                                   0},
                          label.str());
            }
        } else if (phase == "inv-acks") {
            const mem::L2Block *blk = bank_dir.findBlock(t.block);
            if (blk) {
                for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
                    if (blk->isSharer(c)) {
                        g.addEdge(txn, WaitNode{Kind::Core, c, 0},
                                  "awaiting InvAck");
                    }
                }
            }
        }
        // A recall transaction unblocks the request parked behind it;
        // victim and blocked request both live in this bank's slice.
        if (t.is_recall && t.has_resume) {
            g.addEdge(WaitNode{Kind::DirTxn, wid, t.resume_block}, txn,
                      "blocked on recall of L2 victim");
        }
    });
    }

    // Network channels with traffic still in flight: informational --
    // a populated channel means delivery (progress) is still coming.
    network_->forEachChannel([&](mem::NodeId src, mem::NodeId dst,
                                 const mem::Network::Channel &ch) {
        if (ch.in_flight == 0)
            return;
        std::ostringstream label;
        label << ch.in_flight << " message(s) in flight";
        const std::uint32_t chan_id = (src << 8) | dst;
        if (dst >= config_.num_cores) {
            g.addEdge(WaitNode{Kind::Channel, chan_id, 0},
                      WaitNode{Kind::Directory,
                               dirWaitId(banks, dst - config_.num_cores),
                               0},
                      label.str());
        } else {
            g.addEdge(WaitNode{Kind::Channel, chan_id, 0},
                      WaitNode{Kind::Core, dst, 0}, label.str());
        }
    });
}

void
System::writeStallDossier(std::ostream &os) const
{
    os << "=== stall dossier @"
       << (drv_.active ? drv_.now : curTick()) << " ===\n";
    os << "build: " << provenance::oneLine() << "\n";
    if (watchdog_report_.cause != sim::Watchdog::Cause::None) {
        os << "watchdog: cause="
           << sim::Watchdog::causeName(watchdog_report_.cause)
           << " window=[" << watchdog_report_.window_begin << ", "
           << watchdog_report_.fire_tick << "] instret="
           << watchdog_report_.instret << " rollbacks_in_window="
           << watchdog_report_.rollbacks_in_window << "\n";
    }
    if (network_->droppedMsgs() > 0) {
        os << "network: " << network_->droppedMsgs()
           << " message(s) dropped by fault injection\n";
    }
    os << "architectural state:\n";
    writeArchState(os);
    sim::WaitGraph g;
    buildWaitGraph(g);
    g.print(os);
    writeBlackboxTail(os);
    os << "=== end dossier ===\n";
}

void
System::onWatchdogFire(const sim::Watchdog::Report &report)
{
    hung_ = true;
    watchdog_report_ = report;
    std::ostringstream os;
    os << "watchdog: no forward progress for " << config_.watchdog_interval
       << " cycles; aborting the run\n";
    std::ostringstream dossier;
    writeStallDossier(dossier);
    dossier_ = dossier.str();
    reportBlock(os.str() + dossier_);
}

void
System::auditCoherence() const
{
    flAssert(quiesced(), "coherence audit requires a quiesced system");

    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_[i]->forEachBlock([&](const mem::L1Block &blk) {
            const mem::L2Block *l2 =
                dirs_[bankOf(blk.block_addr)]->findBlock(blk.block_addr);
            flAssert(l2, "inclusivity: L1 ", i, " holds 0x", std::hex,
                     blk.block_addr, std::dec, " but the L2 does not");
            switch (blk.state) {
              case mem::L1State::M:
              case mem::L1State::E:
              case mem::L1State::MStale:
                flAssert(l2->owner == i, "L1 ", i, " holds 0x", std::hex,
                         blk.block_addr, std::dec, " as ",
                         l1StateName(blk.state),
                         " but the directory owner is ", l2->owner);
                flAssert(!l2->hasSharers(),
                         "owned block 0x", std::hex, blk.block_addr,
                         std::dec, " also has sharers");
                break;
              case mem::L1State::S: {
                flAssert(l2->isSharer(i), "L1 ", i, " holds 0x",
                         std::hex, blk.block_addr, std::dec,
                         " as S but is not a recorded sharer");
                flAssert(!l2->hasOwner(), "shared block 0x", std::hex,
                         blk.block_addr, std::dec, " also has an owner");
                // Shared copies are clean: data must match the L2.
                flAssert(blk.data == l2->data,
                         "S copy of 0x", std::hex, blk.block_addr,
                         std::dec, " in L1 ", i,
                         " differs from the L2 data");
                break;
              }
              case mem::L1State::I:
                panic("invalid block reported as valid");
            }
        });
    }

    // Directory bookkeeping points at real copies.
    for (const auto &d : dirs_)
    d->forEachBlock([&](const mem::L2Block &l2) {
        if (l2.hasOwner()) {
            const mem::L1Block *blk =
                l1s_.at(l2.owner)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state != mem::L1State::S,
                     "directory owner ", l2.owner, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block exclusively");
        }
        for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
            if (!l2.isSharer(c))
                continue;
            const mem::L1Block *blk =
                l1s_.at(c)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state == mem::L1State::S,
                     "recorded sharer ", c, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block in S");
        }
    });
}

} // namespace fenceless::harness
