#include "harness/system.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/stats_json.hh"
#include "base/trace.hh"
#include "isa/interp.hh"

namespace fenceless::harness
{

System::System(const SystemConfig &config, const isa::Program &prog)
    : config_(config), prog_(prog)
{
    static const bool trace_initialised = [] {
        trace::initFromEnv();
        return true;
    }();
    (void)trace_initialised;

    flAssert(config_.num_cores >= 1, "need at least one core");
    flAssert(config_.num_cores <= mem::max_cores,
             "at most ", mem::max_cores, " cores supported");
    flAssert(config_.l1.block_size == config_.l2.block_size,
             "L1 and L2 block sizes must match");

    // Per-system sink: host-parallel sweeps each get their own, so
    // recording needs no synchronisation.
    ctx_.tracer.setMask(config_.trace_mask);

    // The profiler must be configured before any component construction
    // below: each component caches ifEnabled() exactly once.
    if (config_.profile) {
        std::vector<prof::CodeSym> code_syms;
        for (const auto &[index, label] : prog_.code_labels)
            code_syms.push_back({index, label});
        std::vector<prof::DataSym> data_syms;
        for (const auto &sym : prog_.symbols)
            data_syms.push_back({sym.addr, sym.size, sym.name});
        ctx_.profiler.configure(prog_.code.size(), config_.num_cores,
                                config_.l1.block_size,
                                std::move(code_syms),
                                std::move(data_syms));
    }

    isa::loadImage(prog_, backing_);

    const mem::NodeId dir_node = config_.num_cores;
    network_ = std::make_unique<mem::Network>(ctx_, "network",
                                              config_.net);
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_.push_back(std::make_unique<mem::L1Cache>(
            ctx_, "l1_" + std::to_string(i), config_.l1, i, dir_node,
            *network_));
    }
    dir_ = std::make_unique<mem::Directory>(ctx_, "l2dir", config_.l2,
                                            dir_node, config_.num_cores,
                                            *network_, backing_);

    cpu::Core::Params core_params;
    core_params.model = config_.model;
    core_params.sb_size = config_.sb_size;
    core_params.sb_max_inflight = config_.sb_max_inflight;
    core_params.sb_prefetch_depth = config_.sb_prefetch_depth;
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        cores_.push_back(std::make_unique<cpu::Core>(
            ctx_, "core_" + std::to_string(i), core_params, i, prog_,
            *l1s_[i], config_.num_cores));
        cores_.back()->setHaltCallback([this] { ++halted_; });
    }

    if (config_.spec.mode != spec::SpecMode::Off) {
        for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
            specs_.push_back(std::make_unique<spec::SpecController>(
                ctx_, "spec_" + std::to_string(i), config_.spec,
                *cores_[i], *l1s_[i]));
        }
    }
}

bool
System::run()
{
    for (auto &core : cores_)
        core->reset();
    if (config_.stats_interval > 0)
        scheduleSnapshot();
    ctx_.eventq.run(config_.max_cycles);
    if (halted_ != config_.num_cores)
        return false;
    // Let in-flight protocol traffic (final writebacks, acks) settle so
    // postcondition checks see a quiesced system.
    ctx_.eventq.run(max_tick);
    return true;
}

void
System::scheduleSnapshot()
{
    // Stops rescheduling once every core halts, so the post-halt
    // quiesce run (which runs to max_tick) still drains the queue.
    sim::scheduleOneShot(
        ctx_.eventq, ctx_.curTick() + config_.stats_interval, [this] {
            takeSnapshot();
            if (halted_ < config_.num_cores)
                scheduleSnapshot();
        });
}

void
System::takeSnapshot()
{
    std::ostringstream os;
    statistics::printGroupsJson(os, ctx_.stats);
    snapshots_.push_back(StatSnapshot{ctx_.curTick(), os.str()});
}

void
System::writeStatsJson(std::ostream &os) const
{
    os << "{\n  \"groups\": ";
    statistics::printGroupsJson(os, ctx_.stats);
    os << ",\n  \"snapshots\": [";
    bool first = true;
    for (const auto &snap : snapshots_) {
        os << (first ? "" : ",") << "\n    {\"tick\": " << snap.tick
           << ", \"groups\": " << snap.groups_json << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

Tick
System::runtimeCycles() const
{
    Tick last = 0;
    for (const auto &core : cores_) {
        last = std::max(last,
                        core->statGroup().scalarCount("halt_tick"));
    }
    return last;
}

std::uint64_t
System::debugRead(Addr addr, unsigned size) const
{
    for (const auto &l1 : l1s_) {
        std::uint64_t v = 0;
        if (l1->debugRead(addr, size, v))
            return v;
    }
    return dir_->debugRead(addr, size);
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instret();
    return total;
}

std::uint64_t
System::totalCommits() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->commits();
    return total;
}

std::uint64_t
System::totalRollbacks() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->rollbacks();
    return total;
}

bool
System::quiesced() const
{
    if (!ctx_.eventq.empty())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->quiesced())
            return false;
    }
    return dir_->quiesced();
}

void
System::auditCoherence() const
{
    flAssert(quiesced(), "coherence audit requires a quiesced system");

    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_[i]->forEachBlock([&](const mem::L1Block &blk) {
            const mem::L2Block *l2 = dir_->findBlock(blk.block_addr);
            flAssert(l2, "inclusivity: L1 ", i, " holds 0x", std::hex,
                     blk.block_addr, std::dec, " but the L2 does not");
            switch (blk.state) {
              case mem::L1State::M:
              case mem::L1State::E:
              case mem::L1State::MStale:
                flAssert(l2->owner == i, "L1 ", i, " holds 0x", std::hex,
                         blk.block_addr, std::dec, " as ",
                         l1StateName(blk.state),
                         " but the directory owner is ", l2->owner);
                flAssert(!l2->hasSharers(),
                         "owned block 0x", std::hex, blk.block_addr,
                         std::dec, " also has sharers");
                break;
              case mem::L1State::S: {
                flAssert(l2->isSharer(i), "L1 ", i, " holds 0x",
                         std::hex, blk.block_addr, std::dec,
                         " as S but is not a recorded sharer");
                flAssert(!l2->hasOwner(), "shared block 0x", std::hex,
                         blk.block_addr, std::dec, " also has an owner");
                // Shared copies are clean: data must match the L2.
                flAssert(blk.data == l2->data,
                         "S copy of 0x", std::hex, blk.block_addr,
                         std::dec, " in L1 ", i,
                         " differs from the L2 data");
                break;
              }
              case mem::L1State::I:
                panic("invalid block reported as valid");
            }
        });
    }

    // Directory bookkeeping points at real copies.
    dir_->forEachBlock([&](const mem::L2Block &l2) {
        if (l2.hasOwner()) {
            const mem::L1Block *blk =
                l1s_.at(l2.owner)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state != mem::L1State::S,
                     "directory owner ", l2.owner, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block exclusively");
        }
        for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
            if (!l2.isSharer(c))
                continue;
            const mem::L1Block *blk =
                l1s_.at(c)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state == mem::L1State::S,
                     "recorded sharer ", c, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block in S");
        }
    });
}

} // namespace fenceless::harness
