#include "harness/system.hh"

#include <iomanip>
#include <sstream>

#include "base/logging.hh"
#include "base/provenance.hh"
#include "base/stats_json.hh"
#include "base/trace.hh"
#include "isa/interp.hh"
#include "sim/blackbox.hh"

namespace fenceless::harness
{

System::System(const SystemConfig &config, const isa::Program &prog)
    : config_(config), prog_(prog)
{
    static const bool trace_initialised = [] {
        trace::initFromEnv();
        return true;
    }();
    (void)trace_initialised;

    flAssert(config_.num_cores >= 1, "need at least one core");
    flAssert(config_.num_cores <= mem::max_cores,
             "at most ", mem::max_cores, " cores supported");
    flAssert(config_.l1.block_size == config_.l2.block_size,
             "L1 and L2 block sizes must match");

    // Per-system sink: host-parallel sweeps each get their own, so
    // recording needs no synchronisation.
    ctx_.tracer.setMask(config_.trace_mask);

    // Flight recorder: before component construction so every
    // registerComponent() grows the ring storage.
    if (config_.blackbox_records > 0) {
        ctx_.tracer.configureRing(config_.blackbox_records,
                                  trace::default_blackbox_flags);
    }

    // The profiler must be configured before any component construction
    // below: each component caches ifEnabled() exactly once.
    if (config_.profile) {
        std::vector<prof::CodeSym> code_syms;
        for (const auto &[index, label] : prog_.code_labels)
            code_syms.push_back({index, label});
        std::vector<prof::DataSym> data_syms;
        for (const auto &sym : prog_.symbols)
            data_syms.push_back({sym.addr, sym.size, sym.name});
        ctx_.profiler.configure(prog_.code.size(), config_.num_cores,
                                config_.l1.block_size,
                                std::move(code_syms),
                                std::move(data_syms));
    }

    isa::loadImage(prog_, backing_);

    const mem::NodeId dir_node = config_.num_cores;
    network_ = std::make_unique<mem::Network>(ctx_, "network",
                                              config_.net);
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_.push_back(std::make_unique<mem::L1Cache>(
            ctx_, "l1_" + std::to_string(i), config_.l1, i, dir_node,
            *network_));
    }
    dir_ = std::make_unique<mem::Directory>(ctx_, "l2dir", config_.l2,
                                            dir_node, config_.num_cores,
                                            *network_, backing_);

    cpu::Core::Params core_params;
    core_params.model = config_.model;
    core_params.sb_size = config_.sb_size;
    core_params.sb_max_inflight = config_.sb_max_inflight;
    core_params.sb_prefetch_depth = config_.sb_prefetch_depth;
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        cores_.push_back(std::make_unique<cpu::Core>(
            ctx_, "core_" + std::to_string(i), core_params, i, prog_,
            *l1s_[i], config_.num_cores));
        cores_.back()->setHaltCallback([this] { ++halted_; });
    }

    if (config_.spec.mode != spec::SpecMode::Off) {
        for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
            specs_.push_back(std::make_unique<spec::SpecController>(
                ctx_, "spec_" + std::to_string(i), config_.spec,
                *cores_[i], *l1s_[i]));
        }
    }

    if (config_.watchdog_interval > 0) {
        sim::Watchdog::Params wp;
        wp.interval = config_.watchdog_interval;
        wp.storm_threshold = config_.watchdog_storm;
        watchdog_ = std::make_unique<sim::Watchdog>(
            ctx_.eventq, wp,
            [this] {
                sim::Watchdog::Progress p;
                for (const auto &core : cores_)
                    p.instret += core->instret();
                for (const auto &s : specs_)
                    p.rollbacks += s->rollbacks();
                p.all_halted = halted_ == config_.num_cores;
                return p;
            },
            [this](const sim::Watchdog::Report &r) {
                onWatchdogFire(r);
            });
    }
}

bool
System::run()
{
    for (auto &core : cores_)
        core->reset();
    if (config_.stats_interval > 0)
        scheduleSnapshot();
    if (watchdog_)
        watchdog_->start();

    // If a simulator invariant trips mid-run, dump this system's
    // evidence before aborting.  Thread-local, save/restore: nested or
    // sibling systems (sweep workers) each guard their own run.
    auto prev = setPanicHook([this] {
        std::ostringstream os;
        os << "=== incident dump (panic) ===\n";
        writeArchState(os);
        trace::writeBlackboxTail(os, ctx_.tracer);
        reportBlock(os.str());
    });

    ctx_.eventq.run(config_.max_cycles);
    if (!hung_ && halted_ == config_.num_cores) {
        // Let in-flight protocol traffic (final writebacks, acks)
        // settle so postcondition checks see a quiesced system.
        ctx_.eventq.run(max_tick);
    }
    setPanicHook(std::move(prev));
    return !hung_ && halted_ == config_.num_cores;
}

void
System::scheduleSnapshot()
{
    // Stops rescheduling once every core halts, so the post-halt
    // quiesce run (which runs to max_tick) still drains the queue.
    sim::scheduleOneShot(
        ctx_.eventq, ctx_.curTick() + config_.stats_interval, [this] {
            takeSnapshot();
            if (halted_ < config_.num_cores)
                scheduleSnapshot();
        });
}

void
System::takeSnapshot()
{
    std::ostringstream os;
    statistics::printGroupsJson(os, ctx_.stats);
    snapshots_.push_back(StatSnapshot{ctx_.curTick(), os.str()});
}

void
System::writeStatsJson(std::ostream &os) const
{
    os << "{\n  \"provenance\": " << provenance::jsonObject()
       << ",\n  \"groups\": ";
    statistics::printGroupsJson(os, ctx_.stats);
    os << ",\n  \"snapshots\": [";
    bool first = true;
    for (const auto &snap : snapshots_) {
        os << (first ? "" : ",") << "\n    {\"tick\": " << snap.tick
           << ", \"groups\": " << snap.groups_json << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

Tick
System::runtimeCycles() const
{
    Tick last = 0;
    for (const auto &core : cores_) {
        last = std::max(last,
                        core->statGroup().scalarCount("halt_tick"));
    }
    return last;
}

std::uint64_t
System::debugRead(Addr addr, unsigned size) const
{
    for (const auto &l1 : l1s_) {
        std::uint64_t v = 0;
        if (l1->debugRead(addr, size, v))
            return v;
    }
    return dir_->debugRead(addr, size);
}

std::uint64_t
System::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instret();
    return total;
}

std::uint64_t
System::totalCommits() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->commits();
    return total;
}

std::uint64_t
System::totalRollbacks() const
{
    std::uint64_t total = 0;
    for (const auto &s : specs_)
        total += s->rollbacks();
    return total;
}

bool
System::quiesced() const
{
    if (!ctx_.eventq.empty())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->quiesced())
            return false;
    }
    return dir_->quiesced();
}

void
System::exportTrace(std::ostream &os) const
{
    ctx_.tracer.exportChromeJson(os, provenance::jsonObject());
}

void
System::writeBlackbox(std::ostream &os) const
{
    trace::writeBlackboxJson(os, ctx_.tracer, provenance::jsonObject());
}

void
System::writeBlackboxTail(std::ostream &os,
                          std::size_t per_component) const
{
    trace::writeBlackboxTail(os, ctx_.tracer, per_component);
}

std::string
System::symbolizePc(std::uint64_t pc) const
{
    auto it = prog_.code_labels.upper_bound(pc);
    if (it == prog_.code_labels.begin())
        return "";
    --it;
    std::ostringstream os;
    os << it->second;
    if (pc > it->first)
        os << "+" << (pc - it->first);
    return os.str();
}

void
System::writeArchState(std::ostream &os) const
{
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const cpu::Core &core = *cores_[i];
        os << "  core_" << i << ": pc=" << core.pc();
        if (const std::string sym = symbolizePc(core.pc()); !sym.empty())
            os << " (" << sym << ")";
        os << " instret=" << core.instret() << " model="
           << cpu::consistencyModelName(core.model());
        if (core.halted()) {
            os << " halted";
        } else if (core.idle()) {
            os << " asleep=" << cpu::stallReasonName(core.sleepReason())
               << " since=" << core.sleepBegin();
            if (core.hasPendingAccess())
                os << " pending=0x" << std::hex << core.pendingAddr()
                   << std::dec;
        } else {
            os << " running";
        }
        const auto &sb = core.storeBuffer();
        os << " sb=" << sb.occupancy() << "/" << sb.capacity();
        if (!specs_.empty()) {
            const auto &spec = *specs_[i];
            if (spec.inSpec()) {
                os << " spec{epoch=" << spec.epoch() << " since="
                   << spec.epochStartTick() << " watermark="
                   << spec.watermark() << "}";
            }
            if (spec.cooldown() > 0)
                os << " cooldown=" << spec.cooldown();
            if (spec.consecutiveRollbacks() > 0)
                os << " consec_rollbacks="
                   << spec.consecutiveRollbacks();
        }
        os << "\n";
    }
}

void
System::buildWaitGraph(sim::WaitGraph &g) const
{
    using sim::WaitNode;
    using Kind = sim::WaitNode::Kind;

    const mem::NodeId dir_node = config_.num_cores;

    // Cores: what is each non-running core waiting for?
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const cpu::Core &core = *cores_[i];
        if (core.halted() || !core.idle())
            continue;
        const cpu::StallReason why = core.sleepReason();
        if (core.hasPendingAccess()) {
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::Mshr, i,
                               l1s_[i]->blockAlign(core.pendingAddr())},
                      cpu::stallReasonName(why));
        } else if (why == cpu::StallReason::SpecLimit) {
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::SpecEpoch, i, 0},
                      cpu::stallReasonName(why));
        } else {
            // All remaining sleep reasons wait on store-buffer state
            // (drain, space, or overlap clearing).
            g.addEdge(WaitNode{Kind::Core, i, 0},
                      WaitNode{Kind::StoreBuffer, i, 0},
                      cpu::stallReasonName(why));
        }
    }

    // Store buffers: issued drains wait on the L1 miss machinery.
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        const auto &sb = cores_[i]->storeBuffer();
        for (const auto &e : sb.entries()) {
            if (!e.issued)
                continue;
            g.addEdge(WaitNode{Kind::StoreBuffer, i, 0},
                      WaitNode{Kind::Mshr, i,
                               l1s_[i]->blockAlign(e.addr)},
                      "drain store issued");
        }
        if (sb.retryPending()) {
            g.addEdge(WaitNode{Kind::StoreBuffer, i, 0},
                      WaitNode{Kind::Mshr, i, 0},
                      "drain retry parked (MSHR backpressure)");
        }
    }

    // Speculation: an open epoch commits only after the store buffer
    // drains to the watermark.
    for (std::uint32_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i]->inSpec()) {
            std::ostringstream label;
            label << "commit waits for drain to watermark "
                  << specs_[i]->watermark();
            g.addEdge(WaitNode{Kind::SpecEpoch, i, 0},
                      WaitNode{Kind::StoreBuffer, i, 0}, label.str());
        }
    }

    // L1 MSHRs: outstanding misses wait on directory transactions;
    // overflow-parked fills wait on the local epoch ending.
    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_[i]->forEachMshr([&](const mem::L1Cache::Mshr &m) {
            g.addEdge(WaitNode{Kind::Mshr, i, m.block_addr},
                      WaitNode{Kind::DirTxn, 0, m.block_addr},
                      m.want_m ? "GetM outstanding"
                               : "GetS outstanding");
            if (m.fill_blocked) {
                g.addEdge(WaitNode{Kind::Mshr, i, m.block_addr},
                          WaitNode{Kind::SpecEpoch, i, 0},
                          "fill parked on speculative overflow");
            }
        });
    }

    // Directory transactions: what each active transaction awaits.
    dir_->forEachTxn([&](const mem::Directory::TxnView &t) {
        const WaitNode txn{Kind::DirTxn, 0, t.block};
        const std::string phase = t.phase;
        if (phase == "dram") {
            g.addEdge(txn, WaitNode{Kind::Dram, 0, 0},
                      "awaiting DRAM fill");
        } else if (phase == "fwd") {
            const mem::L2Block *blk = dir_->findBlock(t.block);
            if (blk && blk->hasOwner()) {
                std::ostringstream label;
                label << "awaiting Fwd*Ack from owner (serving "
                      << mem::msgTypeName(t.req_type) << " from node "
                      << t.requester << ")";
                g.addEdge(txn,
                          WaitNode{Kind::Core,
                                   static_cast<std::uint32_t>(
                                       blk->owner),
                                   0},
                          label.str());
            }
        } else if (phase == "inv-acks") {
            const mem::L2Block *blk = dir_->findBlock(t.block);
            if (blk) {
                for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
                    if (blk->isSharer(c)) {
                        g.addEdge(txn, WaitNode{Kind::Core, c, 0},
                                  "awaiting InvAck");
                    }
                }
            }
        }
        // A recall transaction unblocks the request parked behind it.
        if (t.is_recall && t.has_resume) {
            g.addEdge(WaitNode{Kind::DirTxn, 0, t.resume_block}, txn,
                      "blocked on recall of L2 victim");
        }
    });

    // Network channels with traffic still in flight: informational --
    // a populated channel means delivery (progress) is still coming.
    network_->forEachChannel([&](mem::NodeId src, mem::NodeId dst,
                                 const mem::Network::Channel &ch) {
        if (ch.in_flight == 0)
            return;
        std::ostringstream label;
        label << ch.in_flight << " message(s) in flight";
        const std::uint32_t chan_id = (src << 8) | dst;
        if (dst == dir_node) {
            g.addEdge(WaitNode{Kind::Channel, chan_id, 0},
                      WaitNode{Kind::Directory, 0, 0}, label.str());
        } else {
            g.addEdge(WaitNode{Kind::Channel, chan_id, 0},
                      WaitNode{Kind::Core, dst, 0}, label.str());
        }
    });
}

void
System::writeStallDossier(std::ostream &os) const
{
    os << "=== stall dossier @" << ctx_.curTick() << " ===\n";
    os << "build: " << provenance::oneLine() << "\n";
    if (watchdog_report_.cause != sim::Watchdog::Cause::None) {
        os << "watchdog: cause="
           << sim::Watchdog::causeName(watchdog_report_.cause)
           << " window=[" << watchdog_report_.window_begin << ", "
           << watchdog_report_.fire_tick << "] instret="
           << watchdog_report_.instret << " rollbacks_in_window="
           << watchdog_report_.rollbacks_in_window << "\n";
    }
    if (network_->droppedMsgs() > 0) {
        os << "network: " << network_->droppedMsgs()
           << " message(s) dropped by fault injection\n";
    }
    os << "architectural state:\n";
    writeArchState(os);
    sim::WaitGraph g;
    buildWaitGraph(g);
    g.print(os);
    writeBlackboxTail(os);
    os << "=== end dossier ===\n";
}

void
System::onWatchdogFire(const sim::Watchdog::Report &report)
{
    hung_ = true;
    watchdog_report_ = report;
    std::ostringstream os;
    os << "watchdog: no forward progress for " << config_.watchdog_interval
       << " cycles; aborting the run\n";
    std::ostringstream dossier;
    writeStallDossier(dossier);
    dossier_ = dossier.str();
    reportBlock(os.str() + dossier_);
    ctx_.eventq.requestStop();
}

void
System::auditCoherence() const
{
    flAssert(quiesced(), "coherence audit requires a quiesced system");

    for (std::uint32_t i = 0; i < config_.num_cores; ++i) {
        l1s_[i]->forEachBlock([&](const mem::L1Block &blk) {
            const mem::L2Block *l2 = dir_->findBlock(blk.block_addr);
            flAssert(l2, "inclusivity: L1 ", i, " holds 0x", std::hex,
                     blk.block_addr, std::dec, " but the L2 does not");
            switch (blk.state) {
              case mem::L1State::M:
              case mem::L1State::E:
              case mem::L1State::MStale:
                flAssert(l2->owner == i, "L1 ", i, " holds 0x", std::hex,
                         blk.block_addr, std::dec, " as ",
                         l1StateName(blk.state),
                         " but the directory owner is ", l2->owner);
                flAssert(!l2->hasSharers(),
                         "owned block 0x", std::hex, blk.block_addr,
                         std::dec, " also has sharers");
                break;
              case mem::L1State::S: {
                flAssert(l2->isSharer(i), "L1 ", i, " holds 0x",
                         std::hex, blk.block_addr, std::dec,
                         " as S but is not a recorded sharer");
                flAssert(!l2->hasOwner(), "shared block 0x", std::hex,
                         blk.block_addr, std::dec, " also has an owner");
                // Shared copies are clean: data must match the L2.
                flAssert(blk.data == l2->data,
                         "S copy of 0x", std::hex, blk.block_addr,
                         std::dec, " in L1 ", i,
                         " differs from the L2 data");
                break;
              }
              case mem::L1State::I:
                panic("invalid block reported as valid");
            }
        });
    }

    // Directory bookkeeping points at real copies.
    dir_->forEachBlock([&](const mem::L2Block &l2) {
        if (l2.hasOwner()) {
            const mem::L1Block *blk =
                l1s_.at(l2.owner)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state != mem::L1State::S,
                     "directory owner ", l2.owner, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block exclusively");
        }
        for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
            if (!l2.isSharer(c))
                continue;
            const mem::L1Block *blk =
                l1s_.at(c)->findBlock(l2.block_addr);
            flAssert(blk && blk->valid &&
                     blk->state == mem::L1State::S,
                     "recorded sharer ", c, " of 0x", std::hex,
                     l2.block_addr, std::dec,
                     " does not hold the block in S");
        }
    });
}

} // namespace fenceless::harness
