/**
 * @file
 * Host-parallel execution of independent simulation runs.
 *
 * Every harness::System is a fully self-contained deterministic
 * simulation (its own event queue, stat registry and memory image), so
 * the (workload x model x sweep-point) runs of an experiment are
 * embarrassingly parallel on the host.  A SweepRunner executes a batch
 * of such tasks on a small work-stealing thread pool and hands the
 * results back **in submission order**: tasks carry their index, the
 * result buffer restores the sequence, and all rendering happens on the
 * calling thread -- so output is bit-for-bit identical to a sequential
 * run regardless of the worker count.
 *
 *     harness::SweepRunner runner(opts.jobs());
 *     std::vector<std::function<Row()>> tasks = ...;
 *     std::vector<Row> rows = runner.map(std::move(tasks));
 *
 * Tasks must not share mutable state (each one builds its own
 * workloads and Systems) and must report failures as values rather
 * than calling fatal(): an exit() from a worker thread would kill the
 * whole sweep mid-output.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace fenceless::harness
{

class SweepRunner
{
  public:
    /**
     * @param jobs worker count; 0 picks the host's hardware
     *             concurrency, 1 runs every task inline on the calling
     *             thread (the legacy sequential path, no threads
     *             created).
     */
    explicit SweepRunner(unsigned jobs = 0);

    /** The resolved worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /** Resolve jobs the way the constructor does (0 -> hardware). */
    static unsigned resolveJobs(unsigned jobs);

    /**
     * Run every task and return their results indexed exactly like
     * @p tasks.  Tasks execute in any order on any worker; results are
     * buffered by submission index.  If tasks throw, the exception of
     * the lowest-index throwing task is rethrown after every worker
     * has stopped, matching what the sequential path would surface
     * first.
     */
    template <typename R>
    std::vector<R>
    map(std::vector<std::function<R()>> tasks) const
    {
        std::vector<R> results(tasks.size());
        std::vector<std::function<void()>> thunks;
        thunks.reserve(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            thunks.push_back(
                [&results, &tasks, i] { results[i] = tasks[i](); });
        }
        runAll(std::move(thunks));
        return results;
    }

    /** map() for tasks whose only output is a side effect. */
    void
    run(std::vector<std::function<void()>> tasks) const
    {
        runAll(std::move(tasks));
    }

  private:
    void runAll(std::vector<std::function<void()>> thunks) const;

    unsigned jobs_;
};

} // namespace fenceless::harness
