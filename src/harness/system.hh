/**
 * @file
 * Whole-system assembly: N cores with private L1s, a shared L2 with
 * directory, an interconnect, DRAM, and (optionally) one fence-
 * speculation controller per core.  This is the public entry point the
 * examples, tests and benchmarks build on.
 *
 * The system can shard one simulation across host threads
 * (`SystemConfig::shards`): cores -- with their L1s, store buffers and
 * speculation controllers -- are partitioned into shards, each with its
 * own SimContext (event queue, trace sink, profiler) driven by one host
 * thread.  With a monolithic directory (`dir_banks == 1`) the
 * directory, DRAM and network bookkeeping stay on shard 0, making it a
 * hub every miss crosses; with `dir_banks >= 2` the directory banks --
 * each with its own DRAM channel -- are distributed round-robin over
 * all shards (bank home = bank % shards) and the cores spread over all
 * shards too, so coherence traffic becomes point-to-point between the
 * requesting core's shard and the block's home bank.
 * Shards advance in conservatively-synchronized quanta whose length is
 * the minimum cross-shard latency (network latency + 1 cycle of
 * serialization -- the lookahead), with cross-shard messages exchanged
 * through mailboxes at quantum barriers, so no shard ever receives a
 * message "in its past".  All delivery, statistics, profiling and
 * flight-recorder merging is canonical (see mem/network.hh,
 * sim/blackbox.hh): a sharded run's --stats-json, --profile-out and
 * --blackbox-out are byte-identical to the single-threaded reference
 * (`shards = 1`), modulo the self-describing "sim_mode" stanza inside
 * the provenance block.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/flat_memory.hh"
#include "core/spec_controller.hh"
#include "cpu/core.hh"
#include "harness/telemetry.hh"
#include "isa/program.hh"
#include "mem/directory.hh"
#include "mem/l1_cache.hh"
#include "mem/network.hh"
#include "sim/sim_object.hh"
#include "sim/waitgraph.hh"
#include "sim/watchdog.hh"

namespace fenceless::harness
{

/** Everything configurable about a simulated system. */
struct SystemConfig
{
    std::uint32_t num_cores = 4;
    cpu::ConsistencyModel model = cpu::ConsistencyModel::TSO;
    unsigned sb_size = 16;
    unsigned sb_max_inflight = 4;   //!< relaxed-drain overlap (RMO)
    unsigned sb_prefetch_depth = 4; //!< store ownership prefetching
    spec::SpecController::Params spec; //!< spec.mode == Off -> baseline
    mem::L1Cache::Params l1;
    mem::Directory::Params l2;
    mem::Network::Params net;
    std::uint64_t max_cycles = 500'000'000;

    /**
     * Directory banks (power of two, 1..64).  `l2.size` is the *total*
     * L2 capacity; each bank gets a 1/dir_banks slice and its own DRAM
     * channel.  Blocks interleave across banks by block index
     * (mem::DirectoryMap).  1 keeps the classic monolithic directory.
     */
    std::uint32_t dir_banks = 1;

    /**
     * Host threads to shard the simulation across (1 = the classic
     * single-threaded reference).  With dir_banks == 1, cores are
     * partitioned contiguously over shards 1..N-1 and shard 0 runs the
     * directory/DRAM side; with dir_banks >= 2, cores spread over all
     * shards and each bank homes on shard (bank % shards).  Clamped to
     * [1, num_cores + 1].  Results are bitwise independent of this
     * setting (see the file comment).
     */
    std::uint32_t shards = 1;

    /**
     * Structured-trace flag mask (trace::Flag values).  0 (default)
     * disables recording entirely; instrumentation then costs one
     * inline mask test per site.
     */
    std::uint32_t trace_mask = 0;

    /**
     * Periodic stat-snapshot interval in cycles (0 = off).  Each
     * snapshot renders the full registry as JSON; the time series is
     * embedded in writeStatsJson() output.
     */
    Tick stats_interval = 0;

    /**
     * Enable the waste-attribution profiler (per-PC cycle buckets,
     * per-line contention, rollback causes; see sim/profiler.hh).
     * Disabled (default) costs one null test per instrumentation site.
     */
    bool profile = false;

    /**
     * Flight-recorder depth: the last N structured events per component
     * are kept in a fixed ring (rounded up to a power of two) and
     * dumped on panic, watchdog abort, or demand (`--blackbox-out`).
     * On by default -- the ring records only the low-frequency event
     * kinds (see trace::default_blackbox_flags), keeping full-system
     * cost within ~3%.  0 disables the recorder.
     */
    std::size_t blackbox_records = 256;

    /**
     * Host-waste telemetry for the parallel driver (see
     * harness/telemetry.hh): per-shard busy/barrier/drain accounting,
     * cross-shard traffic counts, and host-thread tracks in the trace
     * export.  Off (default) costs one boolean test per quantum phase;
     * on, the driver takes a few steady_clock reads per quantum.
     */
    bool host_telemetry = false;

    /**
     * Per-request span tracing (tail-latency observability, see
     * sim/reqtrace.hh): sample 1 in N misses (0 = off, 1 = every
     * miss).  Sampling is a pure hash of the shard-invariant request
     * id, so the sampled set -- and every derived artifact -- is
     * byte-identical across --shards and host-parallel sweeps.  Off
     * costs one cached-pointer null test per stage site.
     */
    std::uint64_t tail_sample = 0;

    /** Slowest-request dossiers kept by writeOutliers(). */
    std::uint32_t tail_outliers = 10;

    /**
     * Hang-watchdog probe interval in cycles (0 disables).  If a whole
     * interval passes in which no core retires an instruction, the run
     * aborts with a stall dossier instead of spinning to max_cycles.
     */
    Tick watchdog_interval = 100'000;

    /**
     * Rollbacks within one watchdog window that, with zero retirement,
     * classify the hang as a rollback storm (livelock) rather than a
     * deadlock.
     */
    std::uint64_t watchdog_storm = 256;

    /** Convenience: enable on-demand block-granularity speculation. */
    SystemConfig &
    withSpeculation(spec::SpecMode mode = spec::SpecMode::OnDemand)
    {
        spec.mode = mode;
        return *this;
    }

    /** Convenience: enable structured tracing for the given flags. */
    SystemConfig &
    withTracing(std::uint32_t mask =
                    static_cast<std::uint32_t>(trace::Flag::All))
    {
        trace_mask = mask;
        return *this;
    }

    /** Convenience: enable the waste-attribution profiler. */
    SystemConfig &
    withProfiling()
    {
        profile = true;
        return *this;
    }

    /** Convenience: shard the simulation across @p n host threads. */
    SystemConfig &
    withShards(std::uint32_t n)
    {
        shards = n;
        return *this;
    }

    /** Convenience: enable host-waste telemetry in the driver. */
    SystemConfig &
    withHostTelemetry()
    {
        host_telemetry = true;
        return *this;
    }

    /** Convenience: bank the directory @p n ways. */
    SystemConfig &
    withDirBanks(std::uint32_t n)
    {
        dir_banks = n;
        return *this;
    }

    /** Convenience: select the interconnect topology. */
    SystemConfig &
    withTopology(mem::Topology t)
    {
        net.topology = t;
        return *this;
    }

    /** Convenience: enable per-request span tracing. */
    SystemConfig &
    withTailTrace(std::uint64_t period = 1, std::uint32_t outliers = 10)
    {
        tail_sample = period;
        tail_outliers = outliers;
        return *this;
    }
};

class System
{
  public:
    /** One periodic stat snapshot (pre-rendered groups JSON). */
    struct StatSnapshot
    {
        Tick tick;
        std::string groups_json;
    };

    System(const SystemConfig &config, const isa::Program &prog);

    /**
     * Run until every core halts (or the cycle budget is exhausted).
     * @return true if all cores halted
     */
    bool run();

    /** Cycle the last core halted at (the parallel runtime). */
    Tick runtimeCycles() const;

    /** Current simulated tick (last quantum boundary when sharded). */
    Tick
    curTick() const
    {
        return shards_ >= 2 ? drv_.now : ctx_.curTick();
    }

    /** Host threads the simulation is sharded across (post-clamp). */
    std::uint32_t shards() const { return shards_; }

    /**
     * Functional read of the coherent memory image: the owning L1's
     * copy if one exists, else the L2 copy, else DRAM.
     */
    std::uint64_t debugRead(Addr addr, unsigned size) const;

    /** A workload::MemReader over debugRead. */
    std::function<std::uint64_t(Addr, unsigned)>
    memReader() const
    {
        return [this](Addr a, unsigned s) { return debugRead(a, s); };
    }

    std::uint32_t numCores() const { return config_.num_cores; }
    cpu::Core &core(std::uint32_t i) { return *cores_.at(i); }
    const cpu::Core &core(std::uint32_t i) const { return *cores_.at(i); }
    mem::L1Cache &l1(std::uint32_t i) { return *l1s_.at(i); }

    /** Directory banks actually built (config dir_banks). */
    std::uint32_t dirBanks() const
    {
        return static_cast<std::uint32_t>(dirs_.size());
    }
    mem::Directory &directoryBank(std::uint32_t b) { return *dirs_.at(b); }
    const mem::Directory &directoryBank(std::uint32_t b) const
    {
        return *dirs_.at(b);
    }
    /** Bank 0 -- the whole directory when dir_banks == 1. */
    mem::Directory &directory() { return *dirs_.at(0); }

    /** The speculation controller for core @p i (null when disabled). */
    spec::SpecController *specController(std::uint32_t i)
    {
        return specs_.empty() ? nullptr : specs_.at(i).get();
    }

    statistics::StatRegistry &stats() { return stats_; }
    const statistics::StatRegistry &stats() const { return stats_; }
    sim::SimContext &context() { return ctx_; }

    // --- observability ---------------------------------------------------

    /**
     * The export/meta sink (shard 0's).  When sharded, recording is
     * spread over per-shard sinks; use exportTrace()/writeBlackbox()
     * for merged views.
     */
    trace::TraceSink &tracer() { return ctx_.tracer; }
    const trace::TraceSink &tracer() const { return ctx_.tracer; }

    const std::vector<StatSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /**
     * Write the recorded structured trace as Chrome trace-event JSON
     * (open in ui.perfetto.dev or chrome://tracing), stamped with build
     * provenance.  Records are merged canonically (per component, then
     * by tick), so the document is identical for any shard count.
     */
    void exportTrace(std::ostream &os) const;

    // --- incident forensics ----------------------------------------------

    /** @return true if the hang watchdog aborted the last run(). */
    bool hung() const { return hung_; }

    /** The watchdog's report of the last abort (cause None if none). */
    const sim::Watchdog::Report &
    watchdogReport() const
    {
        return watchdog_report_;
    }

    /**
     * The stall dossier captured when the watchdog fired (empty
     * otherwise): per-core architectural state, the wait-for graph with
     * deadlock cycles highlighted, and the flight-recorder tail.
     */
    const std::string &dossier() const { return dossier_; }

    /**
     * Write a stall dossier for the system's *current* state (callable
     * at any point, not just after a watchdog abort).
     */
    void writeStallDossier(std::ostream &os) const;

    /**
     * Write the flight-recorder contents as a Chrome trace-event JSON
     * document -- the same format as exportTrace, so the dump replays
     * through the same tooling.
     */
    void writeBlackbox(std::ostream &os) const;

    /** Write the human-readable flight-recorder tail. */
    void writeBlackboxTail(std::ostream &os,
                           std::size_t per_component = 8) const;

    /**
     * Walk every blocking component and register who-waits-on-whom
     * edges (see sim/waitgraph.hh).  Deterministic: iteration follows
     * index and address order only.
     */
    void buildWaitGraph(sim::WaitGraph &g) const;

    /** "label+offset" for a code pc, or "" when no label covers it. */
    std::string symbolizePc(std::uint64_t pc) const;

    /**
     * Write the full stat registry -- and the periodic snapshot time
     * series, if `stats_interval` was set -- as one JSON document:
     * `{"groups": {...}, "snapshots": [{"tick": N, "groups": ...}]}`.
     * With host telemetry enabled, a "host" section (deterministic
     * counters strictly separated from wall-clock fields) is included.
     */
    void writeStatsJson(std::ostream &os) const;

    /** The host-waste telemetry accumulators (enabled() false if off). */
    const ShardTelemetry &telemetry() const { return telemetry_; }

    // --- tail-latency observability --------------------------------------

    /**
     * The assembled request spans of the last run (empty unless
     * `config.tail_sample` was set).  Canonical order -- identical for
     * any shard count.
     */
    const reqtrace::SpanSet &tailSpans() const { return tail_spans_; }

    /** The critical-path stage attribution of the sampled spans. */
    const reqtrace::TailAttribution &
    tailAttribution() const
    {
        return tail_attr_;
    }

    /**
     * Write the critical-path stage-attribution table: per-stage
     * contribution percentiles (p50/p95/p99/p99.9), cycle shares that
     * reconcile exactly with the spans' end-to-end latencies, and the
     * tail-ownership ranking (which stage dominates above-p99 spans).
     * No-op (with a notice) when span tracing was off.
     */
    void writeTailReport(std::ostream &os) const;

    /**
     * Write the top-K slowest-request dossiers as JSON: per-stage
     * timeline, symbolized issuing PC, home directory bank, and the
     * hottest link on the request's route (ring/mesh).  K is
     * `config.tail_outliers`; selection is ordered by (latency desc,
     * req id asc), so the document is deterministic.
     */
    void writeOutliers(std::ostream &os) const;

    /**
     * Write the end-of-run host-waste report: per-shard utilization,
     * the imbalance factor (max/mean busy), barrier-stall attribution
     * by boundary cause, and the top cross-shard (src, dst) traffic
     * pairs.  No-op (with a notice) when telemetry was off.
     */
    void writeShardReport(std::ostream &os) const;

    /**
     * Symbolized waste profile of the run (empty unless
     * `config.profile` was set).  A non-empty @p scope prefixes every
     * key so profiles of different configurations merge cleanly.  When
     * sharded, the per-shard profilers are folded (integer-exact) in
     * shard order first.
     */
    prof::Profile profile(const std::string &scope = "") const;

    std::uint64_t totalInstructions() const;

    /** Aggregate counters handy for benches (summed over cores). */
    std::uint64_t totalCommits() const;
    std::uint64_t totalRollbacks() const;

    /** @return true when no miss/transaction/event remains in flight. */
    bool quiesced() const;

    /**
     * Audit the coherence invariants (single writer, inclusive L2,
     * directory/sharer agreement, S-block data == L2 data).  Must be
     * called on a quiesced system; panics on the first violation.
     */
    void auditCoherence() const;

    const SystemConfig &config() const { return config_; }

    /**
     * The build-provenance JSON embedded in stats/trace/blackbox
     * output, extended with a "sim_mode" stanza recording how this run
     * was invoked (parallel_sim, shards).
     */
    std::string provenanceJson() const;

  private:
    /** Shared coordinator/driver state for the quantum-stepped run. */
    struct DriverState
    {
        bool active = false;   //!< a run() is in progress
        Tick now = 0;          //!< the boundary being coordinated
        Tick boundary = 0;     //!< run-to target of the current quantum
        Tick next_snapshot = max_tick;
        Tick next_wd = max_tick;
        bool done = false;
        bool phase_toggle = false; //!< which barrier completion this is
    };

    /** One shard's halt counter, padded to avoid false sharing. */
    struct alignas(64) ShardCounter
    {
        std::uint32_t halted = 0;
    };

    sim::SimContext &makeShardContexts();
    std::uint32_t shardOfCore(std::uint32_t core) const;
    std::uint32_t shardOfBank(std::uint32_t bank) const;
    /** The bank whose slice @p addr falls in. */
    std::uint32_t bankOf(Addr addr) const;
    std::uint32_t totalHalted() const;
    Tick lookahead() const;
    std::vector<prof::CodeSym> codeSyms() const;
    std::vector<prof::DataSym> dataSyms() const;
    std::vector<const trace::TraceSink *> allSinks() const;

    void runShards();
    void onBarrier() noexcept;
    void coordinatorStep();
    void coordinatorStepImpl(BoundaryCause *cause);
    Tick nextBoundaryAfter(Tick b, bool idle, bool all_halted,
                           BoundaryCause *cause = nullptr) const;
    void drainMail(std::uint32_t shard);
    bool allQueuesIdle() const;
    std::uint64_t shardPops(std::uint32_t s) const;
    void foldQuantumTelemetry(bool sampled);

    void takeSnapshot(Tick tick);
    void onWatchdogFire(const sim::Watchdog::Report &report);
    void writeArchState(std::ostream &os) const;
    void finalizeTailTrace();

    SystemConfig config_;
    isa::Program prog_;

    // One stat registry spans the whole simulated system; every shard
    // context shares it (each stat is still written by exactly one
    // shard).  Must precede shard_ctx_, which must precede every
    // component (reverse destruction order: components first, then
    // contexts, then the registry).
    statistics::StatRegistry stats_;
    std::uint32_t shards_ = 1;
    std::vector<std::unique_ptr<sim::SimContext>> shard_ctx_;
    sim::SimContext &ctx_; //!< shard 0 (directory side, meta sink)

    FlatMemory backing_;
    std::vector<StatSnapshot> snapshots_;

    std::unique_ptr<mem::Network> network_;
    std::vector<std::unique_ptr<mem::Directory>> dirs_;
    std::vector<std::unique_ptr<mem::L1Cache>> l1s_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<spec::SpecController>> specs_;
    std::unique_ptr<sim::Watchdog> watchdog_;

    std::vector<ShardCounter> shard_halted_;
    /** Cross-shard mailboxes, indexed [src_shard * shards_ + dst]. */
    std::vector<std::vector<mem::Network::PendingMsg>> mail_;
    DriverState drv_;

    ShardTelemetry telemetry_;
    /** Trace ids of the per-shard host tracks ("host.shard<i>"). */
    std::vector<std::uint16_t> host_comp_;
    std::uint16_t coord_comp_ = 0; //!< "host.coord" track id

    bool hung_ = false;
    sim::Watchdog::Report watchdog_report_;
    std::string dossier_;

    // Tail-latency observability (populated by finalizeTailTrace()).
    reqtrace::SpanSet tail_spans_;
    reqtrace::TailAttribution tail_attr_;
    bool tail_finalized_ = false;
    /** "tailtrace" stat group members (null when tracing is off). */
    statistics::Scalar *tail_stat_spans_ = nullptr;
    statistics::Scalar *tail_stat_waiters_ = nullptr;
    statistics::Scalar *tail_stat_incomplete_ = nullptr;
    statistics::Scalar *tail_stat_retries_ = nullptr;
    statistics::Distribution *tail_stat_e2e_ = nullptr;
    std::vector<statistics::Distribution *> tail_stat_stage_;
};

} // namespace fenceless::harness
