/**
 * @file
 * Fixed-width text tables for benchmark output.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fenceless::harness
{

/** Format a double with @p precision decimals. */
std::string fmt(double v, int precision = 2);

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns (first column left, rest right). */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fenceless::harness
