#include "harness/options.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/trace.hh"

namespace fenceless::harness
{

namespace
{

const char *known_options[] = {
    "cores", "model", "spec", "granularity", "overflow", "sb-size",
    "l1-kb", "l2-kb", "dram-latency", "net-latency", "topology",
    "hop-latency", "dir-banks", "scale", "seed",
    "jobs", "csv", "trace", "trace-out", "stats-json", "stats-interval",
    "sweep-json",
    "profile-out", "waste-report", "blackbox-out", "blackbox",
    "watchdog-interval", "watchdog-storm", "parallel-sim", "shards",
    "shard-report", "host-telemetry", "tail-sample", "tail-report",
    "outliers-out", "outliers", "help",
};

bool
isKnown(const std::string &name)
{
    for (const char *k : known_options) {
        if (name == k)
            return true;
    }
    return false;
}

/**
 * Fail fast on an unwritable output path: a long run that only
 * discovers a bad --trace-out / --stats-json / --profile-out at exit
 * loses all of its output.  Open in append mode (creates the file,
 * never truncates an existing one before the run actually writes).
 */
void
requireWritable(const char *option, const std::string &path)
{
    std::ofstream os(path, std::ios::app);
    if (!os) {
        fatal("--", option, ": cannot open '", path,
              "' for writing");
    }
}

} // namespace

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '", arg,
                  "' (only --option[=value] is supported)");
        arg = arg.substr(2);
        std::string name = arg;
        std::string value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }
        if (!isKnown(name))
            fatal("unknown option '--", name, "' (try --help)");
        values_[name] = value;
    }

    if (has("help")) {
        printUsage(argv[0] ? argv[0] : "binary");
        std::exit(0);
    }
    csv_ = has("csv");
    scale_ = static_cast<unsigned>(getInt("scale", 1));
    seed_ = getInt("seed", 42);
    jobs_ = static_cast<unsigned>(getInt("jobs", 0));

    for (const char *opt : {"trace-out", "stats-json", "profile-out",
                            "blackbox-out", "sweep-json",
                            "outliers-out"}) {
        if (has(opt))
            requireWritable(opt, get(opt));
    }
    if (has("profile-out")) // the folded sibling is written too
        requireWritable("profile-out", get("profile-out") + ".folded");
}

std::string
Options::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? "" : it->second;
}

std::uint64_t
Options::getInt(const std::string &name, std::uint64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    try {
        return std::stoull(it->second);
    } catch (...) {
        fatal("option --", name, " expects a number, got '",
              it->second, "'");
    }
}

SystemConfig
Options::applyTo(SystemConfig base) const
{
    if (has("cores"))
        base.num_cores = static_cast<std::uint32_t>(getInt("cores", 0));
    if (has("model"))
        base.model = cpu::parseConsistencyModel(get("model"));
    if (has("spec")) {
        const std::string mode = get("spec");
        if (mode == "off") {
            base.spec.mode = spec::SpecMode::Off;
        } else if (mode == "on-demand") {
            base.spec.mode = spec::SpecMode::OnDemand;
        } else if (mode == "continuous") {
            base.spec.mode = spec::SpecMode::Continuous;
        } else {
            fatal("unknown speculation mode '", mode, "'");
        }
    }
    if (has("granularity")) {
        const std::string g = get("granularity");
        if (g == "block") {
            base.spec.granularity = spec::Granularity::Block;
        } else if (g == "per-store") {
            base.spec.granularity = spec::Granularity::PerStore;
        } else {
            fatal("unknown granularity '", g, "'");
        }
    }
    if (has("overflow")) {
        const std::string p = get("overflow");
        if (p == "stall") {
            base.spec.overflow = spec::OverflowPolicy::Stall;
        } else if (p == "rollback") {
            base.spec.overflow = spec::OverflowPolicy::Rollback;
        } else {
            fatal("unknown overflow policy '", p, "'");
        }
    }
    if (has("sb-size"))
        base.sb_size = static_cast<unsigned>(getInt("sb-size", 0));
    if (has("l1-kb"))
        base.l1.size = getInt("l1-kb", 0) * 1024;
    if (has("l2-kb"))
        base.l2.size = getInt("l2-kb", 0) * 1024;
    if (has("dram-latency"))
        base.l2.dram_latency = getInt("dram-latency", 0);
    if (has("net-latency"))
        base.net.latency = getInt("net-latency", 0);
    if (has("topology")) {
        // Unknown topology is fatal, like --model: silently simulating
        // a different interconnect would invalidate the whole run.
        mem::Topology t;
        if (!mem::parseTopology(get("topology"), t))
            fatal("unknown topology '", get("topology"),
                  "' (crossbar|ring|mesh)");
        base.net.topology = t;
    }
    if (has("hop-latency"))
        base.net.hop_latency = getInt("hop-latency", 0);
    if (has("dir-banks")) {
        // Non-fatal like --shards: any bank count is functionally
        // identical, so round a bad value down instead of dying.
        std::uint64_t banks = getInt("dir-banks", 1);
        if (banks < 1) {
            std::cerr << "warning: --dir-banks must be >= 1; using 1\n";
            banks = 1;
        }
        if (banks > 64) {
            std::cerr << "warning: --dir-banks=" << banks
                      << " exceeds 64; clamping\n";
            banks = 64;
        }
        if (!isPowerOf2(banks)) {
            std::uint64_t down = 1;
            while (down * 2 <= banks)
                down *= 2;
            std::cerr << "warning: --dir-banks=" << banks
                      << " is not a power of two; using " << down
                      << "\n";
            banks = down;
        }
        base.dir_banks = static_cast<std::uint32_t>(banks);
    }
    if (has("trace")) {
        std::uint32_t mask = 0;
        std::string error;
        if (!trace::parseFlags(get("trace"), mask, error))
            fatal("--trace: ", error);
        base.trace_mask = mask;
    } else if (has("trace-out")) {
        // An output file without an explicit flag set means "record
        // everything": the common quick-look invocation.
        base.trace_mask =
            static_cast<std::uint32_t>(trace::Flag::All);
    }
    if (has("stats-interval"))
        base.stats_interval = getInt("stats-interval", 0);
    if (profiling())
        base.profile = true;
    if (has("blackbox"))
        base.blackbox_records =
            static_cast<std::size_t>(getInt("blackbox", 0));
    if (has("watchdog-interval"))
        base.watchdog_interval = getInt("watchdog-interval", 0);
    if (has("watchdog-storm"))
        base.watchdog_storm = getInt("watchdog-storm", 0);
    // --tail-report / --outliers-out imply span tracing at the default
    // period; --tail-sample=N sets the period explicitly (1 = every
    // miss).  Off by default: the sanctioned outputs must stay
    // byte-identical when no tail option is given.
    if (has("tail-sample") || has("tail-report") ||
        has("outliers-out") || has("outliers")) {
        base.tail_sample = getInt("tail-sample", 64);
        if (base.tail_sample == 0) {
            std::cerr << "warning: --tail-sample=0 disables span "
                         "tracing; tail outputs will be empty\n";
        }
        base.tail_outliers =
            static_cast<std::uint32_t>(getInt("outliers", 10));
    }
    // --shard-report implies telemetry; --host-telemetry[=0|1] sets it
    // directly (so a report-less run can still feed the stats-json
    // "host" section and the trace's host tracks).
    if (has("shard-report") || (has("host-telemetry") &&
                                getInt("host-telemetry", 1) != 0)) {
        base.host_telemetry = true;
    }

    // --parallel-sim / --shards: non-fatal validation, like the trace
    // flag parser -- a bad value must not kill a scripted sweep, since
    // every value produces byte-identical results anyway.  Warn and
    // fall back instead.
    if (has("parallel-sim") || has("shards")) {
        auto parse = [this](const char *name,
                            std::uint64_t fallback) -> std::uint64_t {
            const std::string v = get(name);
            try {
                return std::stoull(v);
            } catch (...) {
                std::cerr << "warning: --" << name
                          << " expects a number, got '" << v
                          << "'; ignoring\n";
                return fallback;
            }
        };
        const std::uint64_t parallel =
            has("parallel-sim") ? parse("parallel-sim", 1) : 1;
        if (parallel == 0) {
            if (has("shards") && parse("shards", 1) > 1) {
                std::cerr << "warning: --shards ignored because "
                             "--parallel-sim=0\n";
            }
            base.shards = 1;
        } else {
            std::uint64_t shards =
                has("shards") ? parse("shards", 0) : 0;
            if (has("shards") && shards == 0) {
                std::cerr << "warning: --shards must be >= 1; using "
                             "the default\n";
            }
            if (shards == 0) {
                // Default: one shard per host thread, bounded by the
                // finest partition (one shard per core + one for the
                // directory side).
                const unsigned hw = std::thread::hardware_concurrency();
                shards = std::min<std::uint64_t>(
                    hw ? hw : 1,
                    static_cast<std::uint64_t>(base.num_cores) + 1);
            }
            if (shards > base.num_cores + 1) {
                std::cerr << "warning: --shards=" << shards
                          << " exceeds the finest partition; clamping "
                             "to " << base.num_cores + 1 << "\n";
                shards = base.num_cores + 1;
            }
            base.shards = static_cast<std::uint32_t>(shards);
        }
    }
    return base;
}

void
Options::printUsage(const std::string &prog)
{
    std::cout
        << "usage: " << prog << " [options]\n"
        << "  --cores=N             number of cores (up to 64)\n"
        << "  --model=sc|tso|rmo    consistency model\n"
        << "  --spec=off|on-demand|continuous\n"
        << "  --granularity=block|per-store\n"
        << "  --overflow=stall|rollback\n"
        << "  --sb-size=N           store-buffer entries\n"
        << "  --l1-kb=N             L1 size (KiB)\n"
        << "  --l2-kb=N             L2 size (KiB)\n"
        << "  --dram-latency=N      DRAM latency (cycles)\n"
        << "  --net-latency=N       crossbar flat latency (cycles)\n"
        << "  --topology=T          interconnect: crossbar|ring|mesh\n"
        << "  --hop-latency=N       per-hop latency for ring/mesh\n"
           "                        (cycles, default 3)\n"
        << "  --dir-banks=N         directory banks (power of two,\n"
           "                        1..64; banks interleave by block\n"
           "                        and distribute across shards)\n"
        << "  --scale=N             workload scaling factor\n"
        << "  --seed=N              workload seed\n"
        << "  --jobs=N              host threads for independent runs\n"
           "                        (default: hardware concurrency;\n"
           "                        1 = sequential; output identical)\n"
        << "  --csv                 machine-readable tables\n"
        << "  --trace=f1,f2         structured-trace flags ("
        << trace::validFlagNames() << ")\n"
        << "  --trace-out=FILE      write Chrome trace-event JSON\n"
           "                        (implies --trace=all if no --trace)\n"
        << "  --stats-json=FILE     write the stat registry as JSON\n"
        << "  --stats-interval=N    snapshot stats every N cycles into\n"
           "                        the --stats-json time series\n"
        << "  --sweep-json=FILE     benchmarks that sweep an axis also\n"
           "                        write one JSON object per sweep\n"
           "                        point (fl_report --sweep-json)\n"
        << "  --profile-out=FILE    write the waste-attribution profile\n"
           "                        as JSON plus FILE.folded (flamegraph\n"
           "                        folded stacks)\n"
        << "  --waste-report        print the top-N waste table\n"
        << "  --blackbox-out=FILE   dump the flight recorder after the\n"
           "                        run (Chrome trace-event JSON)\n"
        << "  --blackbox=N          flight-recorder depth per component\n"
           "                        (default 256; 0 = off)\n"
        << "  --watchdog-interval=N hang-watchdog window in cycles\n"
           "                        (default 100000; 0 = off)\n"
        << "  --watchdog-storm=N    rollbacks/window classified as a\n"
           "                        rollback storm (default 256)\n"
        << "  --parallel-sim=0|1    shard ONE simulation across host\n"
           "                        threads (0 = single-threaded\n"
           "                        reference; results are identical)\n"
        << "  --shards=N            shard count for --parallel-sim\n"
           "                        (default: hardware concurrency,\n"
           "                        clamped to cores+1)\n"
        << "  --shard-report        print the host-waste shard report\n"
           "                        (enables host telemetry)\n"
        << "  --host-telemetry=0|1  per-shard busy/barrier/drain\n"
           "                        accounting, stats-json host section\n"
           "                        and host trace tracks\n"
        << "  --tail-sample=N       trace 1 in N misses end to end\n"
           "                        (1 = every miss; byte-identical\n"
           "                        for any --shards / --jobs)\n"
        << "  --tail-report         print the critical-path stage\n"
           "                        attribution table (implies\n"
           "                        --tail-sample=64 if unset)\n"
        << "  --outliers-out=FILE   write top-K slowest-request\n"
           "                        dossiers as JSON (implies span\n"
           "                        tracing like --tail-report)\n"
        << "  --outliers=K          dossiers to keep (default 10)\n"
        << "  --help                this message\n";
}

} // namespace fenceless::harness
